/// \file strip_reachability.h
/// \brief Multi-word bit-parallel BFS: 64·W sampled worlds per pass.
///
/// BatchReachabilityWorkspace amortizes one adjacency walk over 64 sampled
/// pseudo-states by packing edge activity into one `uint64_t` per edge.
/// This workspace widens the lane plane to a **strip** of W words per edge
/// (W ∈ {1, 4, 8} → 64/256/512 lanes per pass), so the same walk replays
/// Eq. 5 over up to 512 states. Inputs are **strip-major**: word
/// `strip_words[e*W + w]` is edge e's activity across the 64 samples of
/// block w of the strip (see strip_plane.h for the layout builder). Every
/// lane-mask argument and every ReachedMask() result is likewise a span of
/// W words in block order.
///
/// On top of the wider strips the fixpoint loop is direction-optimizing
/// (Beamer-style): rounds run top-down — drain the frontier bitmap and push
/// each node's delta mask through its out-edges — until the live frontier
/// exceeds a tunable fraction of the graph's nodes, at which point a round
/// flips to a bottom-up pull over the reversed CSR: every non-saturated
/// node ORs in `reached[src] & plane[e]` across its in-edges in one
/// sequential sweep, visiting each node once regardless of how many
/// distinct arrival depths would have revisited it top-down. Reached masks
/// grow monotonically under OR toward a unique fixpoint, so push and pull
/// rounds commute: results are bit-identical to the 64-lane and scalar
/// references whatever the sweep schedule (the differential suite in
/// tests/test_strip_reachability.cc pins this).
///
/// Callers that pick the width at runtime (query engine, sharded router,
/// sketch build, impact cascades) go through the StripWorkspace interface;
/// the per-pass virtual dispatch is amortized over an entire strip BFS.

#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "graph/strip_ops.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace infoflow {

/// \brief Requested replay lane width (`--lanes {64,256,512,auto}`).
///
/// kAuto picks the widest strip the batch fills: ≥512 rows → 512 lanes,
/// ≥256 rows → 256 lanes, else the 64-lane reference path.
enum class LaneWidth {
  kAuto,
  k64,
  k256,
  k512,
};

/// "auto", "64", "256", "512".
const char* LaneWidthName(LaneWidth lanes);

/// Inverse of LaneWidthName; errors on anything else.
Result<LaneWidth> ParseLaneWidth(std::string_view name);

/// Words per strip (1, 4, or 8) for `lanes` over a bank of `num_rows`
/// samples, applying the kAuto rule above. When the graph's size is given
/// (nonzero), kAuto additionally caps the width so the strip replay's
/// working set — per-node reached+propagated state plus one strip of the
/// edge plane, (2·num_nodes + num_edges)·8·W bytes — stays cache-resident
/// (kStripWorkingSetBudget): wide strips trade ~3–4× fewer node revisits
/// for W× the bytes per visit, a measured win only while those bytes come
/// from L2. Explicit widths are never capped.
unsigned ResolveStripWords(LaneWidth lanes, std::size_t num_rows,
                           std::size_t num_nodes = 0,
                           std::size_t num_edges = 0);

/// kAuto working-set budget (bytes) for ResolveStripWords: ≈L2/3 on the
/// dev box, matching the measured width crossover on the bench shapes
/// (512 lanes win through ~2000 nodes / 5000 edges, 256 through
/// ~4000/10000, 64-lane beyond).
inline constexpr std::size_t kStripWorkingSetBudget = 640 * 1024;

/// \brief Runtime-width handle over StripReachabilityWorkspace<W>.
///
/// Mirrors the BatchReachabilityWorkspace API with every mask widened to a
/// words()-word span; see that class for the contract of each member
/// (Run ≡ Begin + Seed* + Propagate, RunUntil's early exit, the incremental
/// Seed/Propagate discipline of the sharded router's cut-edge exchange).
/// Not thread-safe; give each worker its own instance.
class StripWorkspace {
 public:
  virtual ~StripWorkspace() = default;

  /// Strip width W: the number of 64-lane blocks every pass replays.
  virtual unsigned words() const = 0;

  virtual void Run(const DirectedGraph& graph,
                   const std::vector<NodeId>& sources,
                   const std::uint64_t* strip_words,
                   const std::uint64_t* lane_mask) = 0;

  /// As Run(), but stops at a round boundary once `target`'s mask saturates
  /// `lane_mask`; copies the target's final W-word mask into `target_mask`.
  /// ReachedMask() remains valid for the explored prefix only.
  virtual void RunUntil(const DirectedGraph& graph,
                        const std::vector<NodeId>& sources,
                        const std::uint64_t* strip_words, NodeId target,
                        const std::uint64_t* lane_mask,
                        std::uint64_t* target_mask) = 0;

  virtual void Begin(const DirectedGraph& graph) = 0;
  virtual void Seed(NodeId v, const std::uint64_t* lanes) = 0;
  virtual void Propagate(const std::uint64_t* strip_words) = 0;

  /// W-word span; all-zero when v was never touched.
  virtual const std::uint64_t* ReachedMask(NodeId v) const = 0;

  virtual const std::vector<NodeId>& TouchedNodes() const = 0;

  /// `counts` spans words()·64 entries, indexed `w*64 + lane`.
  virtual void AccumulateReachedCounts(std::uint32_t* counts) const = 0;

  /// A round flips to the bottom-up pull when the live frontier holds more
  /// than `fraction` of the graph's nodes. 0 forces every round bottom-up;
  /// anything > 1 forces pure top-down (both used by the differential
  /// tests).
  virtual void set_pull_threshold(double fraction) = 0;

  /// Factory over the explicit instantiations; `width_words` ∈ {1, 4, 8}.
  static std::unique_ptr<StripWorkspace> Create(unsigned width_words,
                                                const DirectedGraph& graph);
};

/// Default pull-threshold fraction; chosen on the fig6 bench shape where
/// near-critical percolation keeps mid-BFS frontiers wide.
inline constexpr double kDefaultPullThreshold = 0.25;

/// \brief The W-word strip workspace (see file comment). W is compile-time
/// so the per-edge kernels unroll; generic explicit instantiations for
/// W ∈ {1, 4, 8} live in strip_reachability.cc, with AVX2/AVX-512-tagged
/// ones (Isa, see strip_ops.h) in strip_reachability_avx2.cc/_avx512.cc
/// when the toolchain can target those ISAs — Create() picks the widest
/// variant the running CPU supports. All variants compute bit-identical
/// masks. W=1 exists to differentially pin the template against
/// BatchReachabilityWorkspace at identical width.
template <unsigned W, int Isa = kIsaGeneric>
class StripReachabilityWorkspace final : public StripWorkspace {
 public:
  explicit StripReachabilityWorkspace(const DirectedGraph& graph);

  unsigned words() const override { return W; }

  void Run(const DirectedGraph& graph, const std::vector<NodeId>& sources,
           const std::uint64_t* strip_words,
           const std::uint64_t* lane_mask) override;

  void RunUntil(const DirectedGraph& graph,
                const std::vector<NodeId>& sources,
                const std::uint64_t* strip_words, NodeId target,
                const std::uint64_t* lane_mask,
                std::uint64_t* target_mask) override;

  void Begin(const DirectedGraph& graph) override;
  void Seed(NodeId v, const std::uint64_t* lanes) override;
  void Propagate(const std::uint64_t* strip_words) override;

  const std::uint64_t* ReachedMask(NodeId v) const override {
    return reached_.data() + std::size_t{v} * W;
  }

  const std::vector<NodeId>& TouchedNodes() const override {
    return touched_;
  }

  void AccumulateReachedCounts(std::uint32_t* counts) const override;

  void set_pull_threshold(double fraction) override {
    pull_threshold_ = fraction;
  }

 private:
  void BindGraph(const DirectedGraph& graph);

  /// The shared direction-optimizing fixpoint loop behind RunUntil and
  /// Propagate. `target_mask` may be null when `target` is kInvalidNode.
  void Finish(const std::uint64_t* strip_words, NodeId target,
              const std::uint64_t* lane_mask, std::uint64_t* target_mask);

  /// One top-down round: drains `frontier` in node-id order pushing delta
  /// masks through out-edges, marking growth in `next`. Returns the number
  /// of frontier nodes relaxed (the frontier-words metric).
  std::uint64_t PushRound(const std::uint64_t* strip_words,
                          std::uint64_t* frontier, std::uint64_t* next);

  /// One bottom-up round: consumes the entire pending set (clears
  /// `frontier`), sweeps all nodes pulling over the reversed CSR, marks
  /// growth in `next`. Returns the number of nodes swept.
  std::uint64_t PullRound(const std::uint64_t* strip_words,
                          std::uint64_t* frontier, std::uint64_t* next);

  /// Per-node W-word reached masks (`reached_[v*W + w]`); zero outside the
  /// last run's touched set, which Begin re-zeroes instead of all n·W words.
  std::vector<std::uint64_t> reached_;
  /// Lanes already relaxed through v's out-edges (top-down) or claimed
  /// delivered by a full pull round (bottom-up); pushes relax only the
  /// delta `reached_ & ~propagated_`.
  std::vector<std::uint64_t> propagated_;
  /// Level-synchronous frontier bitmaps (bit v = node v pending), exactly
  /// as in the 64-lane workspace.
  std::vector<std::uint64_t> frontier_bits_;
  std::vector<std::uint64_t> next_bits_;
  std::vector<std::uint64_t> ever_bits_;
  std::vector<NodeId> touched_;

  /// Union of every lane seeded since Begin: no reached mask can exceed it,
  /// so a node matching it is saturated and the pull sweep skips it.
  std::uint64_t seeded_union_[W] = {};

  double pull_threshold_ = kDefaultPullThreshold;

  /// Flat out-adjacency (as in BatchReachabilityWorkspace) plus the
  /// reversed CSR the pull rounds sweep: node v's in-edges are
  /// [in_first_[v], in_first_[v+1]), with the source node in in_src_ and
  /// the *forward* edge id (the strip-plane index) in in_eid_.
  const DirectedGraph* bound_graph_ = nullptr;
  std::vector<EdgeId> first_edge_;
  std::vector<NodeId> dst_;
  std::vector<EdgeId> in_first_;
  std::vector<NodeId> in_src_;
  std::vector<EdgeId> in_eid_;

  obs::Counter* metric_strips_;
  obs::Counter* metric_frontier_words_;
  obs::Counter* metric_pull_rounds_;
  obs::Histogram* metric_strip_latency_us_;
};

extern template class StripReachabilityWorkspace<1, kIsaGeneric>;
extern template class StripReachabilityWorkspace<4, kIsaGeneric>;
extern template class StripReachabilityWorkspace<8, kIsaGeneric>;

}  // namespace infoflow
