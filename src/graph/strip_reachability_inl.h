/// \file strip_reachability_inl.h
/// \brief Template bodies of StripReachabilityWorkspace<W, Isa>.
///
/// Included by the translation units that explicitly instantiate the
/// workspace: strip_reachability.cc (generic, always built) and the
/// ISA-tagged units strip_reachability_avx2.cc / strip_reachability_avx512.cc
/// (compiled with -mavx2 / -mavx512f when the toolchain supports them). The
/// Isa tag keeps every instantiation's symbols distinct, so a binary can
/// carry the generic and vector variants side by side and pick at runtime
/// (StripWorkspace::Create) without any one-definition clash. All variants
/// compute bit-identical masks — the tag only changes which StripOps kernel
/// bodies are compiled in.

#pragma once

#include <algorithm>
#include <bit>
#include <string>

#include "graph/strip_reachability.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow {

template <unsigned W, int Isa>
StripReachabilityWorkspace<W, Isa>::StripReachabilityWorkspace(
    const DirectedGraph& graph)
    : reached_(std::size_t{graph.num_nodes()} * W, 0),
      propagated_(std::size_t{graph.num_nodes()} * W, 0),
      frontier_bits_((graph.num_nodes() + 63) / 64, 0),
      next_bits_((graph.num_nodes() + 63) / 64, 0),
      ever_bits_((graph.num_nodes() + 63) / 64, 0),
      metric_strips_(&obs::GetCounter(std::string("reach.batch_blocks.") +
                                      std::to_string(64 * W))),
      metric_frontier_words_(&obs::GetCounter("reach.frontier_words")),
      metric_pull_rounds_(&obs::GetCounter("reach.pull_rounds")),
      metric_strip_latency_us_(&obs::GetHistogram(
          "reach.strip_latency_us",
          {1.0, 5.0, 25.0, 100.0, 500.0, 2500.0, 10000.0})) {
  touched_.reserve(graph.num_nodes());
  BindGraph(graph);
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::BindGraph(
    const DirectedGraph& graph) {
  bound_graph_ = &graph;
  const NodeId n = graph.num_nodes();
  first_edge_.assign(n + 1, 0);
  dst_.resize(graph.num_edges());
  EdgeId k = 0;
  for (NodeId v = 0; v < n; ++v) {
    first_edge_[v] = k;
    for (const EdgeId e : graph.OutEdges(v)) {
      // Strip-plane words are indexed by position in the flat walk, so the
      // id range must really be contiguous (GraphBuilder's lexicographic
      // assignment guarantees it).
      IF_CHECK_EQ(e, k) << "out-edge ids of node " << v << " not contiguous";
      dst_[k++] = graph.edge(e).dst;
    }
  }
  first_edge_[n] = k;
  // Reversed CSR for the bottom-up pull; in_eid_ keeps the forward edge id
  // so pulls index the same strip plane as pushes.
  in_first_.assign(n + 1, 0);
  in_src_.resize(graph.num_edges());
  in_eid_.resize(graph.num_edges());
  k = 0;
  for (NodeId v = 0; v < n; ++v) {
    in_first_[v] = k;
    for (const EdgeId e : graph.InEdges(v)) {
      in_src_[k] = graph.edge(e).src;
      in_eid_[k] = e;
      ++k;
    }
  }
  in_first_[n] = k;
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::Run(
    const DirectedGraph& graph, const std::vector<NodeId>& sources,
    const std::uint64_t* strip_words, const std::uint64_t* lane_mask) {
  Begin(graph);
  for (const NodeId s : sources) {
    Seed(s, lane_mask);
  }
  Finish(strip_words, kInvalidNode, nullptr, nullptr);
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::RunUntil(
    const DirectedGraph& graph, const std::vector<NodeId>& sources,
    const std::uint64_t* strip_words, NodeId target,
    const std::uint64_t* lane_mask, std::uint64_t* target_mask) {
  Begin(graph);
  for (const NodeId s : sources) {
    Seed(s, lane_mask);
  }
  Finish(strip_words, target, lane_mask, target_mask);
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::Begin(const DirectedGraph& graph) {
  IF_CHECK_EQ(reached_.size(), std::size_t{graph.num_nodes()} * W);
  if (&graph != bound_graph_) BindGraph(graph);
  // Same between-runs invariant as the 64-lane workspace: only the previous
  // run's touched set is nonzero, so clear that set, not all n·W words.
  for (const NodeId v : touched_) {
    StripOps<W, Isa>::Zero(&reached_[std::size_t{v} * W]);
    StripOps<W, Isa>::Zero(&propagated_[std::size_t{v} * W]);
    frontier_bits_[v >> 6] = 0;
  }
  touched_.clear();
  std::fill(ever_bits_.begin(), ever_bits_.end(), 0);
  StripOps<W, Isa>::Zero(seeded_union_);
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::Seed(NodeId v,
                                              const std::uint64_t* lanes) {
  IF_CHECK(std::size_t{v} * W < reached_.size())
      << "seed " << v << " out of range";
  std::uint64_t* rv = &reached_[std::size_t{v} * W];
  const bool ever = (ever_bits_[v >> 6] >> (v & 63) & 1) != 0;
  if (!StripOps<W, Isa>::MergeInto(rv, lanes) && ever) {
    return;  // nothing new to propagate
  }
  StripOps<W, Isa>::MergeInto(seeded_union_, lanes);
  frontier_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
  ever_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::Propagate(
    const std::uint64_t* strip_words) {
  Finish(strip_words, kInvalidNode, nullptr, nullptr);
}

template <unsigned W, int Isa>
std::uint64_t StripReachabilityWorkspace<W, Isa>::PushRound(
    const std::uint64_t* strip_words, std::uint64_t* frontier,
    std::uint64_t* next) {
  std::uint64_t relaxed = 0;
  const std::size_t num_words = frontier_bits_.size();
  NodeId batch[64];
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    std::uint64_t bits = frontier[wi];
    if (bits == 0) continue;
    frontier[wi] = 0;
    const NodeId base = static_cast<NodeId>(wi << 6);
    unsigned cnt = 0;
    do {
      batch[cnt++] = base + static_cast<NodeId>(std::countr_zero(bits));
      bits &= bits - 1;
    } while (bits != 0);
    if constexpr (W > 1) {
      // Wide strips spill L2 on big graphs, so the per-node state and the
      // reached_[dst] gathers land in L3. The frontier word hands us up to
      // 64 upcoming nodes at once: issue their line fetches before the
      // compute sweep so the (latency-bound, not bandwidth-bound) misses
      // overlap. Processing order is unchanged — results are identical.
      for (unsigned i = 0; i < cnt; ++i) {
        const NodeId u = batch[i];
        __builtin_prefetch(&reached_[std::size_t{u} * W], 1);
        __builtin_prefetch(&propagated_[std::size_t{u} * W], 1);
      }
      for (unsigned i = 0; i < cnt; ++i) {
        const EdgeId e1 = first_edge_[batch[i] + 1];
        for (EdgeId e = first_edge_[batch[i]]; e < e1; ++e) {
          __builtin_prefetch(&strip_words[std::size_t{e} * W], 0);
          __builtin_prefetch(&reached_[std::size_t{dst_[e]} * W], 1);
        }
      }
    }
    for (unsigned i = 0; i < cnt; ++i) {
      const NodeId u = batch[i];
      std::uint64_t delta[W];
      if (!StripOps<W, Isa>::Delta(delta, &reached_[std::size_t{u} * W],
                                   &propagated_[std::size_t{u} * W])) {
        continue;  // duplicate source seed
      }
      StripOps<W, Isa>::Copy(&propagated_[std::size_t{u} * W],
                             &reached_[std::size_t{u} * W]);
      ++relaxed;
      const EdgeId e1 = first_edge_[u + 1];
      const unsigned live = StripOps<W, Isa>::NonzeroWords(delta);
      if (W > 1 && static_cast<unsigned>(std::popcount(live)) * 2 <= W) {
        // Sparse revisit: near-critical replays grow different words on
        // different rounds, so most re-pushes carry deltas in one or two
        // of the W words. Relaxing only the live words keeps the wide
        // strip's per-revisit cost near the 64-lane path's instead of W×
        // it; dead words contribute nothing, so answers are unchanged.
        for (EdgeId e = first_edge_[u]; e < e1; ++e) {
          const NodeId v = dst_[e];
          std::uint64_t* rv = &reached_[std::size_t{v} * W];
          const std::uint64_t* pe = &strip_words[std::size_t{e} * W];
          std::uint64_t grew = 0;
          for (unsigned m = live; m != 0; m &= m - 1) {
            const unsigned w = static_cast<unsigned>(std::countr_zero(m));
            const std::uint64_t merged = rv[w] | (delta[w] & pe[w]);
            grew |= merged ^ rv[w];
            rv[w] = merged;
          }
          next[v >> 6] |= std::uint64_t{grew != 0} << (v & 63);
        }
        continue;
      }
      for (EdgeId e = first_edge_[u]; e < e1; ++e) {
        const NodeId v = dst_[e];
        const bool grew =
            StripOps<W, Isa>::Relax(&reached_[std::size_t{v} * W], delta,
                                    &strip_words[std::size_t{e} * W]);
        next[v >> 6] |= std::uint64_t{grew} << (v & 63);
      }
    }
  }
  return relaxed;
}

template <unsigned W, int Isa>
std::uint64_t StripReachabilityWorkspace<W, Isa>::PullRound(
    const std::uint64_t* strip_words, std::uint64_t* frontier,
    std::uint64_t* next) {
  // A pull round consumes the entire pending set: every edge is relaxed
  // with (at least) its source's start-of-round mask, because node v's
  // sweep below reads reached_[src] live and only v's own sweep writes
  // reached_[v]. Clear the frontier up front; growth re-marks in `next`.
  std::fill_n(frontier, frontier_bits_.size(), 0);
  const NodeId n = static_cast<NodeId>(first_edge_.size() - 1);
  for (NodeId v = 0; v < n; ++v) {
    std::uint64_t* rv = &reached_[std::size_t{v} * W];
    // Words already at the seeded-union cap cannot grow; pulling only the
    // unsaturated words leaves the result bit-identical (Pull is a pure OR).
    const unsigned live = StripOps<W, Isa>::DifferingWords(rv, seeded_union_);
    if (live == 0) {
      // Saturated: v cannot grow, and every head of v's out-edges either
      // pulls v's full mask during this sweep or is itself saturated and
      // needs nothing. Claim full delivery.
      StripOps<W, Isa>::Copy(&propagated_[std::size_t{v} * W], rv);
      continue;
    }
    std::uint64_t old[W];
    StripOps<W, Isa>::Copy(old, rv);
    const EdgeId k1 = in_first_[v + 1];
    if (W > 1 && static_cast<unsigned>(std::popcount(live)) * 2 <= W) {
      for (EdgeId k = in_first_[v]; k < k1; ++k) {
        const std::uint64_t* sv = &reached_[std::size_t{in_src_[k]} * W];
        const std::uint64_t* pe = &strip_words[std::size_t{in_eid_[k]} * W];
        for (unsigned m = live; m != 0; m &= m - 1) {
          const unsigned w = static_cast<unsigned>(std::countr_zero(m));
          rv[w] |= sv[w] & pe[w];
        }
      }
    } else {
      for (EdgeId k = in_first_[v]; k < k1; ++k) {
        StripOps<W, Isa>::Pull(rv, &reached_[std::size_t{in_src_[k]} * W],
                               &strip_words[std::size_t{in_eid_[k]} * W]);
      }
    }
    // Out-edges of v were (or will be, for heads scanned after v) relaxed
    // with at least `old`, so claiming `old` delivered keeps the delta
    // invariant; the [old, merged) lanes are re-pushed next round, and the
    // OR-lattice merge makes that re-push idempotent.
    StripOps<W, Isa>::Copy(&propagated_[std::size_t{v} * W], old);
    const bool grew = !StripOps<W, Isa>::Equal(rv, old);
    next[v >> 6] |= std::uint64_t{grew} << (v & 63);
  }
  metric_pull_rounds_->Increment();
  return n;
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::Finish(
    const std::uint64_t* strip_words, NodeId target,
    const std::uint64_t* lane_mask, std::uint64_t* target_mask) {
  WallTimer timer;
  std::uint64_t frontier_words = 0;
  const std::size_t num_words = frontier_bits_.size();
  const NodeId n = static_cast<NodeId>(first_edge_.size() - 1);
  std::uint64_t* frontier = frontier_bits_.data();
  std::uint64_t* next = next_bits_.data();
  bool done =
      target != kInvalidNode &&
      StripOps<W, Isa>::Equal(&reached_[std::size_t{target} * W], lane_mask);
  while (!done) {
    // Direction choice à la Beamer: a wide live frontier makes the
    // one-visit-per-node pull sweep cheaper than revisiting push targets
    // once per distinct arrival depth.
    std::uint64_t live = 0;
    for (std::size_t wi = 0; wi < num_words; ++wi) {
      live += static_cast<std::uint64_t>(std::popcount(frontier[wi]));
    }
    const bool pull =
        static_cast<double>(live) > pull_threshold_ * static_cast<double>(n);
    frontier_words += pull ? PullRound(strip_words, frontier, next)
                           : PushRound(strip_words, frontier, next);
    std::uint64_t any = 0;
    for (std::size_t wi = 0; wi < num_words; ++wi) {
      ever_bits_[wi] |= next[wi];
      any |= next[wi];
    }
    std::swap(frontier, next);
    if (target != kInvalidNode &&
        StripOps<W, Isa>::Equal(&reached_[std::size_t{target} * W],
                                lane_mask)) {
      break;  // saturated: the answer cannot change
    }
    done = any == 0;
  }
  // An early exit leaves a live frontier; restore the empty-bitmap
  // invariant and re-extract touched_ from ever_bits_, exactly as the
  // 64-lane workspace does.
  std::fill(frontier_bits_.begin(), frontier_bits_.end(), 0);
  std::fill(next_bits_.begin(), next_bits_.end(), 0);
  touched_.clear();
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    std::uint64_t bits = ever_bits_[wi];
    const NodeId base = static_cast<NodeId>(wi << 6);
    while (bits != 0) {
      touched_.push_back(base + static_cast<NodeId>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  if (target != kInvalidNode && target_mask != nullptr) {
    StripOps<W, Isa>::Copy(target_mask, &reached_[std::size_t{target} * W]);
  }
  metric_strips_->Increment();
  metric_frontier_words_->Increment(frontier_words);
  if constexpr (obs::MetricsEnabled()) {
    metric_strip_latency_us_->Record(timer.Seconds() * 1e6);
  }
}

template <unsigned W, int Isa>
void StripReachabilityWorkspace<W, Isa>::AccumulateReachedCounts(
    std::uint32_t* counts) const {
  for (const NodeId v : touched_) {
    for (unsigned w = 0; w < W; ++w) {
      std::uint64_t mask = reached_[std::size_t{v} * W + w];
      while (mask != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(mask));
        ++counts[w * 64 + lane];
        mask &= mask - 1;
      }
    }
  }
}

}  // namespace infoflow
