/// \file strip_ops.h
/// \brief W-word mask kernels for the strip reachability workspace.
///
/// A strip replays 64·W sampled worlds per BFS pass, so every mask the
/// workspace touches (reached, propagated, deltas, lane masks, edge plane
/// entries) is W consecutive `uint64_t`. These kernels are the only place
/// the width appears in arithmetic: plain unrolled loops the compiler can
/// auto-vectorize on any ISA, with AVX2 (4-word granules) and AVX-512
/// (8-word granules) bodies selected by the `Isa` tag. ISA-tagged
/// instantiations are compiled only in translation units built with the
/// matching -m flags (strip_reachability_avx2.cc / _avx512.cc) and chosen
/// at runtime by StripWorkspace::Create via __builtin_cpu_supports — the
/// generic instantiation is always present, so portability never depends
/// on the build host. The intrinsic bodies compute the exact same words as
/// the fallback — merges are plain OR/ANDNOT lattice steps — so results
/// are bit-identical whichever variant runs.

#pragma once

#include <cstdint>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace infoflow {

/// Widest supported strip, in 64-bit words (512 lanes per pass).
inline constexpr unsigned kMaxStripWords = 8;

/// ISA tags for StripOps / StripReachabilityWorkspace instantiations.
/// Ordered so `Isa >= kIsaAvx2` reads as "at least AVX2".
inline constexpr int kIsaGeneric = 0;
inline constexpr int kIsaAvx2 = 1;
inline constexpr int kIsaAvx512 = 2;

/// \brief Static W-word mask kernels (see file comment).
template <unsigned W, int Isa = kIsaGeneric>
struct StripOps {
  static_assert(W >= 1 && W <= kMaxStripWords);

  static void Copy(std::uint64_t* dst, const std::uint64_t* src) {
    for (unsigned w = 0; w < W; ++w) dst[w] = src[w];
  }

  static void Zero(std::uint64_t* dst) {
    for (unsigned w = 0; w < W; ++w) dst[w] = 0;
  }

  static bool AnySet(const std::uint64_t* x) {
    std::uint64_t any = 0;
    for (unsigned w = 0; w < W; ++w) any |= x[w];
    return any != 0;
  }

  static bool Equal(const std::uint64_t* a, const std::uint64_t* b) {
    std::uint64_t diff = 0;
    for (unsigned w = 0; w < W; ++w) diff |= a[w] ^ b[w];
    return diff == 0;
  }

  /// dst |= src; returns whether any dst word changed.
  static bool MergeInto(std::uint64_t* dst, const std::uint64_t* src) {
    std::uint64_t grew = 0;
    for (unsigned w = 0; w < W; ++w) {
      const std::uint64_t merged = dst[w] | src[w];
      grew |= merged ^ dst[w];
      dst[w] = merged;
    }
    return grew != 0;
  }

  /// delta = r & ~p; returns whether any delta bit is set.
  static bool Delta(std::uint64_t* delta, const std::uint64_t* r,
                    const std::uint64_t* p) {
    std::uint64_t any = 0;
    for (unsigned w = 0; w < W; ++w) {
      delta[w] = r[w] & ~p[w];
      any |= delta[w];
    }
    return any != 0;
  }

  /// Bitmask (bit w) of the nonzero words of x. Push/pull rounds use it to
  /// relax only live words: near-critical replays grow different strip words
  /// on different rounds, so a node revisited for one word's growth must not
  /// pay W-word kernels on every out-edge.
  static unsigned NonzeroWords(const std::uint64_t* x) {
    unsigned mask = 0;
    for (unsigned w = 0; w < W; ++w) {
      mask |= static_cast<unsigned>(x[w] != 0) << w;
    }
    return mask;
  }

  /// Bitmask of words where a and b differ (the unsaturated words when b is
  /// the seeded-union cap).
  static unsigned DifferingWords(const std::uint64_t* a,
                                 const std::uint64_t* b) {
    unsigned mask = 0;
    for (unsigned w = 0; w < W; ++w) {
      mask |= static_cast<unsigned>(a[w] != b[w]) << w;
    }
    return mask;
  }

  /// dst |= delta & plane (the top-down edge relaxation); returns whether
  /// any dst word changed.
  static bool Relax(std::uint64_t* dst, const std::uint64_t* delta,
                    const std::uint64_t* plane) {
#if defined(__AVX512F__)
    if constexpr (Isa >= kIsaAvx512 && W % 8 == 0) {
      unsigned changed = 0;
      for (unsigned w = 0; w < W; w += 8) {
        const __m512i old = _mm512_loadu_si512(dst + w);
        const __m512i d = _mm512_loadu_si512(delta + w);
        const __m512i p = _mm512_loadu_si512(plane + w);
        const __m512i merged = _mm512_or_si512(old, _mm512_and_si512(d, p));
        _mm512_storeu_si512(dst + w, merged);
        changed |= _mm512_cmpneq_epi64_mask(old, merged);
      }
      return changed != 0;
    }
#endif
#if defined(__AVX2__)
    if constexpr (Isa >= kIsaAvx2 && W % 4 == 0) {
      bool changed = false;
      for (unsigned w = 0; w < W; w += 4) {
        const __m256i old =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delta + w));
        const __m256i p =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + w));
        const __m256i merged = _mm256_or_si256(old, _mm256_and_si256(d, p));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), merged);
        const __m256i diff = _mm256_xor_si256(old, merged);
        changed |= _mm256_testz_si256(diff, diff) == 0;
      }
      return changed;
    }
#endif
    std::uint64_t grew = 0;
    for (unsigned w = 0; w < W; ++w) {
      const std::uint64_t merged = dst[w] | (delta[w] & plane[w]);
      grew |= merged ^ dst[w];
      dst[w] = merged;
    }
    return grew != 0;
  }

  /// acc |= src & plane (the bottom-up in-edge pull; growth is detected
  /// once per node by the caller, not per edge).
  static void Pull(std::uint64_t* acc, const std::uint64_t* src,
                   const std::uint64_t* plane) {
#if defined(__AVX512F__)
    if constexpr (Isa >= kIsaAvx512 && W % 8 == 0) {
      for (unsigned w = 0; w < W; w += 8) {
        const __m512i a = _mm512_loadu_si512(acc + w);
        const __m512i s = _mm512_loadu_si512(src + w);
        const __m512i p = _mm512_loadu_si512(plane + w);
        _mm512_storeu_si512(acc + w,
                            _mm512_or_si512(a, _mm512_and_si512(s, p)));
      }
      return;
    }
#endif
#if defined(__AVX2__)
    if constexpr (Isa >= kIsaAvx2 && W % 4 == 0) {
      for (unsigned w = 0; w < W; w += 4) {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + w));
        const __m256i s =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
        const __m256i p =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + w),
                            _mm256_or_si256(a, _mm256_and_si256(s, p)));
      }
      return;
    }
#endif
    for (unsigned w = 0; w < W; ++w) acc[w] |= src[w] & plane[w];
  }
};

}  // namespace infoflow
