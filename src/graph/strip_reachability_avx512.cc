/// \file strip_reachability_avx512.cc
/// \brief AVX-512-tagged strip workspace instantiation.
///
/// Compiled with -mavx512f (gated by CMake's check_cxx_compiler_flag and
/// the INFOFLOW_STRIP_AVX512 define): the StripOps<8, kIsaAvx512> kernels
/// here run one 512-bit granule per strip. Only the 8-word width gets a
/// dedicated AVX-512 variant — a 4-word strip is a single 256-bit granule,
/// which the AVX2 unit already covers. StripWorkspace::Create guards the
/// factory with __builtin_cpu_supports("avx512f").

#include "graph/strip_reachability_inl.h"
#include "util/check.h"

namespace infoflow {

template class StripReachabilityWorkspace<8, kIsaAvx512>;

std::unique_ptr<StripWorkspace> CreateAvx512StripWorkspace(
    unsigned width_words, const DirectedGraph& graph) {
  IF_CHECK_EQ(width_words, 8u) << "no AVX-512 strip variant for this width";
  return std::make_unique<StripReachabilityWorkspace<8, kIsaAvx512>>(graph);
}

}  // namespace infoflow
