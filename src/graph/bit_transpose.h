/// \file bit_transpose.h
/// \brief In-register 64×64 bitset transpose.
///
/// The serve SampleBank stores retained pseudo-states twice: row-major
/// (one packed edge-bit row per state — what scalar RunPacked consumes) and
/// edge-major (for each edge, one word whose bit s is the edge's activity in
/// sample s of a 64-sample block — what BatchReachabilityWorkspace consumes).
/// Converting between the two layouts is a 64×64 bit-matrix transpose per
/// (64-row block × 64-edge column) tile; the recursive block-swap below does
/// it in 6·64 word operations, entirely in registers (Hacker's Delight §7-3).

#pragma once

#include <cstddef>
#include <cstdint>

namespace infoflow {

/// \brief Transposes the 64×64 bit matrix held in `m` in place.
///
/// Bit j of word i moves to bit i of word j: if `m[i]` is row i with bit j
/// = A[i][j], the result has `m[j]` bit i = A[i][j]. Involutive — applying
/// it twice restores the input.
inline void Transpose64x64(std::uint64_t m[64]) {
  // Swap progressively smaller off-diagonal blocks: 32×32, 16×16, ..., 1×1.
  // With bit j of word i = A[i][j] (LSB-first columns), the off-diagonal
  // pair to exchange is (rows i..i+s−1, cols ≥ s) ↔ (rows i+s.., cols < s):
  // the high bits of the upper rows against the low bits of the lower rows.
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (unsigned shift = 32; shift != 0; shift >>= 1) {
    for (unsigned i = 0; i < 64; i = (i + shift + 1) & ~shift) {
      const std::uint64_t t =
          ((m[i] >> shift) ^ m[i + shift]) & mask;
      m[i] ^= t << shift;
      m[i + shift] ^= t;
    }
    mask ^= mask << (shift >> 1);
  }
}

/// \brief Scatters one 64-sample block's edge-major plane into word slot
/// `w` of a `width`-word strip-major plane: `strip_words[e*width + w] =
/// block_plane[e]`.
///
/// The strip layout (strip_plane.h) interleaves the words of `width`
/// consecutive blocks per edge, so the W-lane BFS loads one edge's whole
/// strip with a single contiguous read. No bit-level work is needed beyond
/// the per-block Transpose64x64 above — widening is a word gather.
inline void ScatterBlockIntoStrip(const std::uint64_t* block_plane,
                                  std::size_t num_edges, unsigned width,
                                  unsigned w, std::uint64_t* strip_words) {
  for (std::size_t e = 0; e < num_edges; ++e) {
    strip_words[e * width + w] = block_plane[e];
  }
}

}  // namespace infoflow
