/// \file strip_reachability_avx2.cc
/// \brief AVX2-tagged strip workspace instantiations.
///
/// This translation unit is compiled with -mavx2 (gated by CMake's
/// check_cxx_compiler_flag and the INFOFLOW_STRIP_AVX2 define), so the
/// StripOps<W, kIsaAvx2> kernel bodies here use 256-bit granules. Only the
/// factory below may be called from generic code — StripWorkspace::Create
/// guards it with __builtin_cpu_supports("avx2") so these instructions
/// never execute on a CPU without them.

#include "graph/strip_reachability_inl.h"
#include "util/check.h"

namespace infoflow {

template class StripReachabilityWorkspace<4, kIsaAvx2>;
template class StripReachabilityWorkspace<8, kIsaAvx2>;

std::unique_ptr<StripWorkspace> CreateAvx2StripWorkspace(
    unsigned width_words, const DirectedGraph& graph) {
  switch (width_words) {
    case 4:
      return std::make_unique<StripReachabilityWorkspace<4, kIsaAvx2>>(graph);
    case 8:
      return std::make_unique<StripReachabilityWorkspace<8, kIsaAvx2>>(graph);
    default:
      break;
  }
  IF_CHECK(false) << "no AVX2 strip variant for width " << width_words;
  return nullptr;
}

}  // namespace infoflow
