/// \file strip_plane.h
/// \brief Strip-major edge plane: W 64-sample blocks interleaved per edge.
///
/// StripReachabilityWorkspace consumes edge activity as W consecutive words
/// per edge — word `words[(s*num_edges + e)*W + w]` is edge e's activity
/// across the 64 samples of block s·W+w (bit t = sample t of that block).
/// The layout is built by *interleaving* the per-block edge-major planes the
/// SampleBank already materializes via the 64×64 transpose (bit_transpose.h)
/// — no new bit-level transpose is needed, just a word gather. Blocks past
/// the bank's last 64-row block (a ragged tail strip) stay zero, and the
/// per-strip lane masks carry the valid-lane words so dead lanes never
/// propagate.
///
/// Planes are immutable after construction and published by shared_ptr
/// swap (BankGeneration::AcquireStripPlane, ShardView::AcquireStripPlane):
/// readers that acquired a plane keep replaying it across concurrent bank
/// refreshes, mirroring the generation RCU discipline.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/bit_transpose.h"

namespace infoflow {

/// \brief Immutable strip-major plane over `num_blocks` 64-sample blocks
/// grouped into strips of `width` words (see file comment).
struct StripPlane {
  unsigned width = 1;          ///< W: 64-lane blocks per strip.
  std::size_t num_edges = 0;   ///< Words per block row of a strip.
  std::size_t num_blocks = 0;  ///< 64-sample blocks covered.
  std::size_t num_strips = 0;  ///< ceil(num_blocks / width).
  /// num_strips · num_edges · width words, strip-major.
  std::vector<std::uint64_t> words;
  /// num_strips · width valid-lane words (zero past num_blocks).
  std::vector<std::uint64_t> lane_masks;

  const std::uint64_t* StripWords(std::size_t s) const {
    return words.data() + s * num_edges * width;
  }
  const std::uint64_t* StripLaneMask(std::size_t s) const {
    return lane_masks.data() + s * width;
  }
  /// 64-lane blocks actually covered by strip s (width, except possibly
  /// fewer for the last strip).
  unsigned StripBlocks(std::size_t s) const {
    const std::size_t first = s * width;
    const std::size_t left = num_blocks - first;
    return left < width ? static_cast<unsigned>(left) : width;
  }
};

/// \brief Builds the strip-major plane by interleaving per-block edge-major
/// planes. `block_words(b)` must return block b's `num_edges`-word plane and
/// `block_lane_mask(b)` its valid-lane word, for b < num_blocks.
template <typename BlockWordsFn, typename BlockLaneMaskFn>
StripPlane BuildStripPlane(unsigned width, std::size_t num_edges,
                           std::size_t num_blocks, BlockWordsFn&& block_words,
                           BlockLaneMaskFn&& block_lane_mask) {
  StripPlane plane;
  plane.width = width;
  plane.num_edges = num_edges;
  plane.num_blocks = num_blocks;
  plane.num_strips = (num_blocks + width - 1) / width;
  plane.words.assign(plane.num_strips * num_edges * width, 0);
  plane.lane_masks.assign(plane.num_strips * width, 0);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t s = b / width;
    const unsigned w = static_cast<unsigned>(b % width);
    ScatterBlockIntoStrip(block_words(b), num_edges, width, w,
                          plane.words.data() + s * num_edges * width);
    plane.lane_masks[s * width + w] = block_lane_mask(b);
  }
  return plane;
}

}  // namespace infoflow
