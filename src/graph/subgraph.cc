#include "graph/subgraph.h"

#include <algorithm>

#include "util/check.h"

namespace infoflow {

NodeId Subgraph::LocalNode(NodeId parent_id) const {
  auto it = parent_to_node.find(parent_id);
  return it == parent_to_node.end() ? kInvalidNode : it->second;
}

Subgraph InducedSubgraph(const DirectedGraph& parent,
                         const std::vector<NodeId>& nodes) {
  Subgraph sub;
  for (NodeId p : nodes) {
    IF_CHECK(p < parent.num_nodes()) << "node " << p << " out of range";
    if (sub.parent_to_node.contains(p)) continue;
    const auto local = static_cast<NodeId>(sub.node_to_parent.size());
    sub.parent_to_node.emplace(p, local);
    sub.node_to_parent.push_back(p);
  }

  GraphBuilder builder(static_cast<NodeId>(sub.node_to_parent.size()));
  // Collect (local edge, parent edge) pairs; GraphBuilder::Build sorts edges
  // by (src, dst), so replicate that order for edge_to_parent.
  struct Mapped {
    Edge local;
    EdgeId parent_edge;
  };
  std::vector<Mapped> mapped;
  for (NodeId local_src = 0;
       local_src < static_cast<NodeId>(sub.node_to_parent.size());
       ++local_src) {
    const NodeId parent_src = sub.node_to_parent[local_src];
    for (EdgeId e : parent.OutEdges(parent_src)) {
      const NodeId local_dst = sub.LocalNode(parent.edge(e).dst);
      if (local_dst == kInvalidNode) continue;
      builder.AddEdge(local_src, local_dst).CheckOK();
      mapped.push_back(Mapped{Edge{local_src, local_dst}, e});
    }
  }
  std::sort(mapped.begin(), mapped.end(), [](const Mapped& a, const Mapped& b) {
    return a.local.src != b.local.src ? a.local.src < b.local.src
                                      : a.local.dst < b.local.dst;
  });
  sub.edge_to_parent.reserve(mapped.size());
  for (const Mapped& m : mapped) sub.edge_to_parent.push_back(m.parent_edge);
  sub.graph = std::move(builder).Build();
  IF_CHECK_EQ(sub.edge_to_parent.size(), sub.graph.num_edges());
  return sub;
}

Subgraph EgoSubgraph(const DirectedGraph& parent, NodeId focus,
                     std::size_t radius, EgoDirection direction) {
  IF_CHECK(focus < parent.num_nodes()) << "focus " << focus << " out of range";
  // Level-bounded BFS collecting the node ball.
  std::vector<NodeId> ball{focus};
  std::vector<std::uint8_t> seen(parent.num_nodes(), 0);
  seen[focus] = 1;
  std::size_t frontier_begin = 0;
  for (std::size_t depth = 0; depth < radius; ++depth) {
    const std::size_t frontier_end = ball.size();
    if (frontier_begin == frontier_end) break;
    for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
      const NodeId u = ball[i];
      auto visit = [&](NodeId v) {
        if (!seen[v]) {
          seen[v] = 1;
          ball.push_back(v);
        }
      };
      if (direction != EgoDirection::kIn) {
        for (EdgeId e : parent.OutEdges(u)) visit(parent.edge(e).dst);
      }
      if (direction != EgoDirection::kOut) {
        for (EdgeId e : parent.InEdges(u)) visit(parent.edge(e).src);
      }
    }
    frontier_begin = frontier_end;
  }
  return InducedSubgraph(parent, ball);
}

}  // namespace infoflow
