#include "graph/generators.h"

#include <algorithm>

#include "util/check.h"

namespace infoflow {

DirectedGraph UniformRandomGraph(NodeId num_nodes, EdgeId num_edges,
                                 Rng& rng) {
  IF_CHECK(num_nodes >= 2) << "need at least two nodes, got " << num_nodes;
  const auto n = static_cast<std::uint64_t>(num_nodes);
  const std::uint64_t max_edges = n * (n - 1);
  IF_CHECK(num_edges <= max_edges)
      << "requested " << num_edges << " edges, max is " << max_edges;

  GraphBuilder builder(num_nodes);
  if (static_cast<std::uint64_t>(num_edges) * 3 > max_edges) {
    // Dense request: enumerate all pairs and sample without replacement.
    std::vector<Edge> all;
    all.reserve(max_edges);
    for (NodeId u = 0; u < num_nodes; ++u) {
      for (NodeId v = 0; v < num_nodes; ++v) {
        if (u != v) all.push_back(Edge{u, v});
      }
    }
    // Partial Fisher–Yates.
    for (EdgeId i = 0; i < num_edges; ++i) {
      const auto j =
          i + static_cast<std::size_t>(rng.NextBounded(all.size() - i));
      std::swap(all[i], all[j]);
      IF_CHECK(builder.AddEdgeIfAbsent(all[i].src, all[i].dst));
    }
  } else {
    // Sparse request: rejection sampling.
    while (builder.num_edges() < num_edges) {
      const auto u = static_cast<NodeId>(rng.NextBounded(num_nodes));
      const auto v = static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (u == v) continue;
      builder.AddEdgeIfAbsent(u, v);
    }
  }
  return std::move(builder).Build();
}

DirectedGraph PreferentialAttachmentGraph(NodeId num_nodes,
                                          std::size_t out_degree,
                                          double reciprocity, Rng& rng) {
  IF_CHECK(num_nodes >= 2) << "need at least two nodes";
  IF_CHECK(out_degree >= 1) << "out_degree must be >= 1";
  IF_CHECK(reciprocity >= 0.0 && reciprocity <= 1.0)
      << "reciprocity must be in [0,1], got " << reciprocity;

  GraphBuilder builder(num_nodes);
  // repeated_nodes holds one copy of a node per (in-degree + 1) unit, the
  // standard Barabási–Albert urn trick; O(1) proportional draws.
  std::vector<NodeId> urn;
  urn.reserve(static_cast<std::size_t>(num_nodes) * (out_degree + 2));
  urn.push_back(0);  // node 0 starts with weight 1

  for (NodeId v = 1; v < num_nodes; ++v) {
    const std::size_t want = std::min<std::size_t>(out_degree, v);
    std::vector<NodeId> targets;
    targets.reserve(want);
    std::size_t guard = 0;
    while (targets.size() < want && guard < 64 * want + 64) {
      ++guard;
      const NodeId t = urn[rng.NextBounded(urn.size())];
      if (t == v) continue;
      if (std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    // Fallback: fill from the low ids if the urn kept colliding.
    for (NodeId t = 0; targets.size() < want && t < v; ++t) {
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      if (builder.AddEdgeIfAbsent(v, t)) urn.push_back(t);
      if (rng.Bernoulli(reciprocity) && builder.AddEdgeIfAbsent(t, v)) {
        urn.push_back(v);
      }
    }
    urn.push_back(v);  // the newcomer's own base weight
  }
  return std::move(builder).Build();
}

DirectedGraph RandomTreeGraph(NodeId num_nodes, std::size_t max_children,
                              Rng& rng) {
  IF_CHECK(num_nodes >= 2) << "need at least two nodes, got " << num_nodes;
  GraphBuilder builder(num_nodes);
  // eligible holds every node whose fanout is still below the cap; one
  // uniform draw per newcomer keeps the shape unbiased among bounded trees.
  std::vector<NodeId> eligible{0};
  std::vector<std::size_t> fanout(num_nodes, 0);
  for (NodeId v = 1; v < num_nodes; ++v) {
    const std::size_t slot = rng.NextBounded(eligible.size());
    const NodeId parent = eligible[slot];
    builder.AddEdge(parent, v).CheckOK();
    if (max_children != 0 && ++fanout[parent] >= max_children) {
      eligible[slot] = eligible.back();
      eligible.pop_back();
    }
    eligible.push_back(v);
  }
  return std::move(builder).Build();
}

DirectedGraph StarFragment(std::size_t num_parents) {
  IF_CHECK(num_parents >= 1) << "star fragment needs at least one parent";
  const auto sink = static_cast<NodeId>(num_parents);
  GraphBuilder builder(static_cast<NodeId>(num_parents + 1));
  for (NodeId parent = 0; parent < sink; ++parent) {
    builder.AddEdge(parent, sink).CheckOK();
  }
  return std::move(builder).Build();
}

}  // namespace infoflow
