#include "graph/batch_reachability.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "util/timer.h"

namespace infoflow {

BatchReachabilityWorkspace::BatchReachabilityWorkspace(
    const DirectedGraph& graph)
    : reached_(graph.num_nodes(), 0),
      propagated_(graph.num_nodes(), 0),
      frontier_bits_((graph.num_nodes() + 63) / 64, 0),
      next_bits_((graph.num_nodes() + 63) / 64, 0),
      ever_bits_((graph.num_nodes() + 63) / 64, 0),
      metric_blocks_(&obs::GetCounter("reach.batch_blocks")),
      metric_frontier_words_(&obs::GetCounter("reach.frontier_words")),
      metric_block_latency_us_(&obs::GetHistogram(
          "reach.block_latency_us",
          {1.0, 5.0, 25.0, 100.0, 500.0, 2500.0, 10000.0})) {
  touched_.reserve(graph.num_nodes());
  BindGraph(graph);
}

void BatchReachabilityWorkspace::BindGraph(const DirectedGraph& graph) {
  bound_graph_ = &graph;
  const NodeId n = graph.num_nodes();
  first_edge_.assign(n + 1, 0);
  dst_.resize(graph.num_edges());
  EdgeId k = 0;
  for (NodeId v = 0; v < n; ++v) {
    first_edge_[v] = k;
    for (const EdgeId e : graph.OutEdges(v)) {
      // The flat walk indexes edge_words by position, so the id range must
      // really be contiguous — guaranteed by GraphBuilder's lexicographic
      // id assignment.
      IF_CHECK_EQ(e, k) << "out-edge ids of node " << v << " not contiguous";
      dst_[k++] = graph.edge(e).dst;
    }
  }
  first_edge_[n] = k;
}

void BatchReachabilityWorkspace::Run(const DirectedGraph& graph,
                                     const std::vector<NodeId>& sources,
                                     const std::uint64_t* edge_words,
                                     std::uint64_t lane_mask) {
  RunUntil(graph, sources, edge_words, kInvalidNode, lane_mask);
}

std::uint64_t BatchReachabilityWorkspace::RunUntil(
    const DirectedGraph& graph, const std::vector<NodeId>& sources,
    const std::uint64_t* edge_words, NodeId target, std::uint64_t lane_mask) {
  Begin(graph);
  for (const NodeId s : sources) {
    Seed(s, lane_mask);
  }
  return Finish(edge_words, target, lane_mask);
}

void BatchReachabilityWorkspace::Begin(const DirectedGraph& graph) {
  IF_CHECK_EQ(reached_.size(), graph.num_nodes());
  if (&graph != bound_graph_) BindGraph(graph);
  // Restore the between-runs invariant — reached_/propagated_ are zero
  // everywhere except the previous run's touched set, so clearing that set
  // (not all n words) resets the workspace. Frontier bits are cleared for
  // the touched set too, covering seeds from an abandoned Begin/Seed
  // sequence (a finished run always leaves the bitmaps empty).
  for (const NodeId v : touched_) {
    reached_[v] = 0;
    propagated_[v] = 0;
    frontier_bits_[v >> 6] = 0;
  }
  touched_.clear();
  std::fill(ever_bits_.begin(), ever_bits_.end(), 0);
}

void BatchReachabilityWorkspace::Seed(NodeId v, std::uint64_t lanes) {
  IF_CHECK(v < reached_.size()) << "seed " << v << " out of range";
  const std::uint64_t merged = reached_[v] | lanes;
  if (merged == reached_[v] && (ever_bits_[v >> 6] >> (v & 63) & 1) != 0) {
    return;  // nothing new to propagate
  }
  reached_[v] = merged;
  frontier_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
  ever_bits_[v >> 6] |= std::uint64_t{1} << (v & 63);
}

void BatchReachabilityWorkspace::Propagate(const std::uint64_t* edge_words) {
  (void)Finish(edge_words, kInvalidNode, 0);
}

std::uint64_t BatchReachabilityWorkspace::Finish(
    const std::uint64_t* edge_words, NodeId target, std::uint64_t lane_mask) {
  WallTimer timer;
  std::uint64_t frontier_words = 0;
  std::uint64_t target_mask = target != kInvalidNode ? reached_[target] : 0;
  const std::size_t num_words = frontier_bits_.size();
  // Level-synchronous rounds: each round drains frontier_bits_ in node-id
  // order (sequential edge_words access) and branchlessly marks mask
  // growth in next_bits_. A node re-enters a later round only when new
  // lanes arrived, and then relaxes just that delta — lanes arriving at a
  // node in the same round cost one visit, so a node is revisited once per
  // distinct arrival depth, not once per lane.
  std::uint64_t* frontier = frontier_bits_.data();
  std::uint64_t* next = next_bits_.data();
  bool done = target != kInvalidNode && target_mask == lane_mask;
  while (!done) {
    for (std::size_t wi = 0; wi < num_words; ++wi) {
      std::uint64_t bits = frontier[wi];
      if (bits == 0) continue;
      frontier[wi] = 0;
      const NodeId base = static_cast<NodeId>(wi << 6);
      do {
        const NodeId u =
            base + static_cast<NodeId>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t delta = reached_[u] & ~propagated_[u];
        if (delta == 0) continue;  // duplicate source seed
        propagated_[u] = reached_[u];
        ++frontier_words;
        const EdgeId e1 = first_edge_[u + 1];
        for (EdgeId e = first_edge_[u]; e < e1; ++e) {
          // Branchless merge: unconditional OR into the destination, with
          // the grew/didn't-grow bit folded into the right frontier word.
          const NodeId v = dst_[e];
          const std::uint64_t old = reached_[v];
          const std::uint64_t merged = old | (delta & edge_words[e]);
          reached_[v] = merged;
          next[v >> 6] |= std::uint64_t{merged != old} << (v & 63);
        }
      } while (bits != 0);
    }
    std::uint64_t any = 0;
    for (std::size_t wi = 0; wi < num_words; ++wi) {
      ever_bits_[wi] |= next[wi];
      any |= next[wi];
    }
    std::swap(frontier, next);
    if (target != kInvalidNode) {
      target_mask = reached_[target];
      // Saturated: the answer cannot change; stop at the round boundary.
      if (target_mask == lane_mask) break;
    }
    done = any == 0;
  }
  // An early exit leaves a live frontier; zero both bitmaps so the next
  // run starts from the empty-bitmap invariant.
  std::fill(frontier_bits_.begin(), frontier_bits_.end(), 0);
  std::fill(next_bits_.begin(), next_bits_.end(), 0);
  // Touched set = every node whose mask ever grew (sources included).
  // Every growth passes through next_bits_ at a round boundary, so
  // ever_bits_ covers it; extracting here keeps the hot loop free of the
  // first-touch branch and push_back. ever_bits_ accumulates across
  // repeated Propagate calls, so rebuild the list from scratch each time.
  touched_.clear();
  for (std::size_t wi = 0; wi < num_words; ++wi) {
    std::uint64_t bits = ever_bits_[wi];
    const NodeId base = static_cast<NodeId>(wi << 6);
    while (bits != 0) {
      touched_.push_back(base + static_cast<NodeId>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
  metric_blocks_->Increment();
  metric_frontier_words_->Increment(frontier_words);
  if constexpr (obs::MetricsEnabled()) {
    metric_block_latency_us_->Record(timer.Seconds() * 1e6);
  }
  return target != kInvalidNode ? reached_[target] : 0;
}

void BatchReachabilityWorkspace::AccumulateReachedCounts(
    std::uint32_t* counts) const {
  for (const NodeId v : touched_) {
    std::uint64_t mask = reached_[v];
    while (mask != 0) {
      const int lane = std::countr_zero(mask);
      ++counts[lane];
      mask &= mask - 1;
    }
  }
}

}  // namespace infoflow
