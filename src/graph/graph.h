/// \file graph.h
/// \brief The directed-graph substrate for all information-flow models.
///
/// An ICM is a directed graph G = (V, E, P) (§II). This type stores the
/// (V, E) part: nodes are dense integer ids 0..n-1, edges have dense integer
/// ids 0..m-1 (so a pseudo-state is simply a bit vector indexed by EdgeId,
/// §III-A), and both out- and in-adjacency are stored in CSR form for cache-
/// friendly traversal — reachability over active edges is the inner loop of
/// the Metropolis–Hastings sampler.
///
/// Graphs are immutable once built; construct them with GraphBuilder.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace infoflow {

/// Dense node identifier, 0-based.
using NodeId = std::uint32_t;
/// Dense edge identifier, 0-based; pseudo-states index by this.
using EdgeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = ~NodeId{0};
/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

/// \brief A directed edge endpoint pair.
struct Edge {
  NodeId src;
  NodeId dst;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;

/// \brief Immutable directed graph with CSR out/in adjacency and O(1)
/// edge-id lookup.
class DirectedGraph {
 public:
  /// Constructs the empty graph (0 nodes, 0 edges); assign a built graph
  /// over it.
  DirectedGraph() = default;

  /// Number of nodes n.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of edges m.
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Endpoints of edge `e`.
  const Edge& edge(EdgeId e) const;

  /// All edges, ordered by EdgeId.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving `v`, ordered by destination.
  std::span<const EdgeId> OutEdges(NodeId v) const;

  /// Edge ids entering `v`, ordered by source.
  std::span<const EdgeId> InEdges(NodeId v) const;

  /// Out-degree of `v`.
  std::size_t OutDegree(NodeId v) const { return OutEdges(v).size(); }

  /// In-degree of `v`.
  std::size_t InDegree(NodeId v) const { return InEdges(v).size(); }

  /// Id of the edge (src, dst), or kInvalidEdge when absent. O(log deg).
  EdgeId FindEdge(NodeId src, NodeId dst) const;

  /// True when the edge (src, dst) exists.
  bool HasEdge(NodeId src, NodeId dst) const {
    return FindEdge(src, dst) != kInvalidEdge;
  }

  /// "DirectedGraph(n=..., m=...)".
  std::string ToString() const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
  // CSR: out_offsets_ has n+1 entries; out_edge_ids_[out_offsets_[v] ..
  // out_offsets_[v+1]) are v's outgoing edges sorted by destination.
  std::vector<std::size_t> out_offsets_;
  std::vector<EdgeId> out_edge_ids_;
  std::vector<std::size_t> in_offsets_;
  std::vector<EdgeId> in_edge_ids_;
};

/// \brief Mutable accumulator for DirectedGraph.
///
/// \code
///   GraphBuilder b(4);
///   b.AddEdge(0, 1).CheckOK();
///   b.AddEdge(1, 2).CheckOK();
///   DirectedGraph g = std::move(b).Build();
/// \endcode
class GraphBuilder {
 public:
  /// Starts a graph with `num_nodes` nodes (ids 0..num_nodes-1).
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds the directed edge (src, dst). Self-loops and duplicates are
  /// rejected (the ICM gains nothing from either: information re-arriving at
  /// a node never changes its activity, §I).
  Status AddEdge(NodeId src, NodeId dst);

  /// Adds the edge if absent; returns true when it was inserted. Endpoints
  /// must still be valid non-self-loop node ids.
  bool AddEdgeIfAbsent(NodeId src, NodeId dst);

  /// Number of edges added so far.
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }

  /// Finalizes into an immutable graph. Edge ids are assigned by
  /// (src, dst) lexicographic order — deterministic regardless of insertion
  /// order, so models serialized by edge id are stable.
  DirectedGraph Build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
  std::unordered_map<std::uint64_t, bool> edge_set_;
};

}  // namespace infoflow
