#include "graph/reachability.h"

#include "util/check.h"

namespace infoflow {

ReachabilityWorkspace::ReachabilityWorkspace(const DirectedGraph& graph) {
  Reset(graph.num_nodes());
}

void ReachabilityWorkspace::Reset(std::size_t num_nodes) {
  visited_version_.assign(num_nodes, 0);
  version_ = 0;
  queue_.reserve(num_nodes);
  order_.reserve(num_nodes);
}

void ReachabilityWorkspace::Run(const DirectedGraph& graph,
                                const std::vector<NodeId>& sources,
                                const std::vector<std::uint8_t>& edge_active) {
  RunUntil(graph, sources, edge_active, kInvalidNode);
}

bool ReachabilityWorkspace::RunUntil(
    const DirectedGraph& graph, const std::vector<NodeId>& sources,
    const std::vector<std::uint8_t>& edge_active, NodeId target) {
  IF_CHECK_EQ(edge_active.size(), graph.num_edges());
  return RunUntilImpl(graph, sources, target,
                      [&](EdgeId e) { return edge_active[e] != 0; });
}

void ReachabilityWorkspace::RunPacked(const DirectedGraph& graph,
                                      const std::vector<NodeId>& sources,
                                      const std::uint64_t* edge_bits) {
  RunUntilPacked(graph, sources, edge_bits, kInvalidNode);
}

bool ReachabilityWorkspace::RunUntilPacked(const DirectedGraph& graph,
                                           const std::vector<NodeId>& sources,
                                           const std::uint64_t* edge_bits,
                                           NodeId target) {
  return RunUntilImpl(graph, sources, target, [&](EdgeId e) {
    return PackedEdgeActive(edge_bits, e);
  });
}

template <typename ActiveFn>
bool ReachabilityWorkspace::RunUntilImpl(const DirectedGraph& graph,
                                         const std::vector<NodeId>& sources,
                                         NodeId target,
                                         const ActiveFn& active) {
  IF_CHECK_EQ(visited_version_.size(), graph.num_nodes());
  if (++version_ == 0) {
    // Version counter wrapped; clear stamps and restart at 1.
    std::fill(visited_version_.begin(), visited_version_.end(), 0);
    version_ = 1;
  }
  queue_.clear();
  order_.clear();

  for (NodeId s : sources) {
    IF_CHECK(s < graph.num_nodes()) << "source " << s << " out of range";
    if (visited_version_[s] == version_) continue;
    visited_version_[s] = version_;
    queue_.push_back(s);
    order_.push_back(s);
    if (s == target) return true;
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    const NodeId u = queue_[head++];
    for (EdgeId e : graph.OutEdges(u)) {
      if (!active(e)) continue;
      const NodeId v = graph.edge(e).dst;
      if (visited_version_[v] == version_) continue;
      visited_version_[v] = version_;
      queue_.push_back(v);
      order_.push_back(v);
      if (v == target) return true;
    }
  }
  return false;
}

bool ReachabilityWorkspace::IsReached(NodeId v) const {
  IF_CHECK(v < visited_version_.size()) << "node " << v << " out of range";
  return visited_version_[v] == version_;
}

bool FlowExists(const DirectedGraph& graph, NodeId source, NodeId sink,
                const std::vector<std::uint8_t>& edge_active) {
  ReachabilityWorkspace ws(graph);
  return ws.RunUntil(graph, {source}, edge_active, sink);
}

std::vector<NodeId> ActiveNodes(const DirectedGraph& graph,
                                const std::vector<NodeId>& sources,
                                const std::vector<std::uint8_t>& edge_active) {
  ReachabilityWorkspace ws(graph);
  ws.Run(graph, sources, edge_active);
  return ws.ReachedNodes();
}

}  // namespace infoflow
