#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

namespace {
inline std::uint64_t EdgeKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
}  // namespace

const Edge& DirectedGraph::edge(EdgeId e) const {
  IF_CHECK(e < edges_.size()) << "edge id " << e << " out of range";
  return edges_[e];
}

std::span<const EdgeId> DirectedGraph::OutEdges(NodeId v) const {
  IF_CHECK(v < num_nodes_) << "node id " << v << " out of range";
  return {out_edge_ids_.data() + out_offsets_[v],
          out_offsets_[v + 1] - out_offsets_[v]};
}

std::span<const EdgeId> DirectedGraph::InEdges(NodeId v) const {
  IF_CHECK(v < num_nodes_) << "node id " << v << " out of range";
  return {in_edge_ids_.data() + in_offsets_[v],
          in_offsets_[v + 1] - in_offsets_[v]};
}

EdgeId DirectedGraph::FindEdge(NodeId src, NodeId dst) const {
  IF_CHECK(src < num_nodes_ && dst < num_nodes_)
      << "endpoints out of range: (" << src << "," << dst << ")";
  auto out = OutEdges(src);
  // Out-edges are sorted by destination; binary search.
  auto it = std::lower_bound(
      out.begin(), out.end(), dst,
      [this](EdgeId e, NodeId d) { return edges_[e].dst < d; });
  if (it != out.end() && edges_[*it].dst == dst) return *it;
  return kInvalidEdge;
}

std::string DirectedGraph::ToString() const {
  return "DirectedGraph(n=" + std::to_string(num_nodes_) +
         ", m=" + std::to_string(edges_.size()) + ")";
}

GraphBuilder::GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
  IF_CHECK(num_nodes != kInvalidNode) << "node count overflows NodeId";
}

Status GraphBuilder::AddEdge(NodeId src, NodeId dst) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::OutOfRange("edge (", src, ",", dst,
                              ") references missing node; n=", num_nodes_);
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loop (", src, ",", dst,
                                   ") not allowed in an ICM");
  }
  auto [it, inserted] = edge_set_.emplace(EdgeKey(src, dst), true);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("duplicate edge (", src, ",", dst, ")");
  }
  edges_.push_back(Edge{src, dst});
  return Status::OK();
}

bool GraphBuilder::AddEdgeIfAbsent(NodeId src, NodeId dst) {
  IF_CHECK(src < num_nodes_ && dst < num_nodes_ && src != dst)
      << "invalid edge (" << src << "," << dst << "), n=" << num_nodes_;
  auto [it, inserted] = edge_set_.emplace(EdgeKey(src, dst), true);
  (void)it;
  if (inserted) edges_.push_back(Edge{src, dst});
  return inserted;
}

DirectedGraph GraphBuilder::Build() && {
  DirectedGraph g;
  g.num_nodes_ = num_nodes_;
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  g.edges_ = std::move(edges_);
  const auto n = static_cast<std::size_t>(num_nodes_);
  const std::size_t m = g.edges_.size();

  // Out CSR: edges are already sorted by (src, dst).
  g.out_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) ++g.out_offsets_[e.src + 1];
  for (std::size_t v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }
  g.out_edge_ids_.resize(m);
  for (EdgeId e = 0; e < m; ++e) {
    // Sorted order means we can fill sequentially per source.
    g.out_edge_ids_[g.out_offsets_[g.edges_[e].src]++] = e;
  }
  // Undo the offset advance.
  for (std::size_t v = n; v > 0; --v) {
    g.out_offsets_[v] = g.out_offsets_[v - 1];
  }
  g.out_offsets_[0] = 0;

  // In CSR via counting sort on destination.
  g.in_offsets_.assign(n + 1, 0);
  for (const Edge& e : g.edges_) ++g.in_offsets_[e.dst + 1];
  for (std::size_t v = 0; v < n; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_edge_ids_.resize(m);
  {
    std::vector<std::size_t> cursor(g.in_offsets_.begin(),
                                    g.in_offsets_.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
      g.in_edge_ids_[cursor[g.edges_[e].dst]++] = e;
    }
  }
  // Within a destination bucket, edges arrive in (src,dst) order already —
  // sorted by source, as documented.
  return g;
}

}  // namespace infoflow
