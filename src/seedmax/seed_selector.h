/// \file seed_selector.h
/// \brief CELF lazy-greedy top-k seed selection over RR sketch coverage.
///
/// With sketches from rr_index.h, the expected spread of a seed set S is
/// estimated unbiasedly as universe · (covered sketches / R) — the
/// standard reverse-influence-sampling estimator — and maximizing spread
/// is max-coverage over the sketch groups. Coverage is monotone
/// submodular, so lazy greedy (CELF, as in core/influence_max.h) applies:
/// a stale cached gain is an upper bound on the true marginal gain, which
/// both skips re-evaluations and *prunes* — when a freshly recomputed
/// gain still dominates the best stale upper bound in the queue, the pick
/// is final without touching the remaining candidates (the bound pruning
/// of Frey et al.). All gain arithmetic is popcount over lane words.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "seedmax/rr_index.h"
#include "util/status.h"

namespace infoflow::seedmax {

/// \brief Selection tuning.
struct SeedMaxOptions {
  /// Seed-set size k.
  std::size_t num_seeds = 1;
  /// Restrict candidate seeds (empty: every node). Duplicates are ignored
  /// after validation.
  std::vector<NodeId> candidates;

  /// Validates against the sketch set's node universe.
  Status Validate(std::size_t num_nodes) const;
};

/// \brief One greedy pick with its running spread estimate.
struct SeedPick {
  NodeId node = 0;
  /// Marginal sketches newly covered by this pick.
  std::uint64_t marginal_coverage = 0;
  /// Unbiased spread estimate of the seed set up to and including this
  /// pick: universe · (covered / R).
  double spread = 0.0;
  /// Binomial MCSE of that estimate: universe · sqrt(p̂(1 − p̂) / R).
  double mcse = 0.0;
};

/// \brief The selection outcome plus the counters behind the
/// `seedmax.select.*` metrics.
struct SeedMaxResult {
  /// Picks in selection order.
  std::vector<SeedPick> picks;
  /// Final spread estimate and MCSE (the last pick's, 0/0 when k = 0).
  double spread = 0.0;
  double mcse = 0.0;
  /// Gain evaluations performed (each is one posting-list walk).
  std::size_t evaluations = 0;
  /// Picks finalized by the CELF upper-bound short-circuit without
  /// exhausting the queue.
  std::size_t prune_hits = 0;
  /// Provenance, copied from the sketch set.
  std::uint64_t generation = 0;
  std::uint64_t model_epoch = 0;
  std::uint64_t num_sketches = 0;
  std::size_t universe = 0;
  std::size_t total_rows = 0;
  std::size_t effective_rows = 0;

  /// Seeds in selection order (convenience over `picks`).
  std::vector<NodeId> seeds() const;
};

/// \brief Lazy-greedy selection of `options.num_seeds` seeds maximizing
/// sketch coverage. Deterministic: ties break toward the smaller node id.
Result<SeedMaxResult> SelectSeeds(const RrSketchSet& sketches,
                                  const SeedMaxOptions& options);

}  // namespace infoflow::seedmax
