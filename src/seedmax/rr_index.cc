#include "seedmax/rr_index.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "graph/batch_reachability.h"
#include "graph/strip_plane.h"
#include "graph/strip_reachability.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::seedmax {
namespace {

struct IndexMetrics {
  obs::Counter* builds = &obs::GetCounter("seedmax.sketch.builds_total");
  obs::Counter* postings =
      &obs::GetCounter("seedmax.sketch.postings_total");
  obs::Counter* reverse_passes =
      &obs::GetCounter("seedmax.sketch.reverse_passes_total");
  obs::Counter* blocks_reused =
      &obs::GetCounter("seedmax.sketch.blocks_reused_total");
  obs::Histogram* build_ms = &obs::GetHistogram(
      "seedmax.sketch.build_ms", obs::LogBuckets(0.05, 10000.0, 3));
  obs::Gauge* generation = &obs::GetGauge("seedmax.index.generation");

  static IndexMetrics& Get() {
    static IndexMetrics metrics;
    return metrics;
  }
};

}  // namespace

ReversedGraphView ReversedGraphView::Build(
    std::shared_ptr<const DirectedGraph> graph) {
  ReversedGraphView view;
  view.parent_ = std::move(graph);
  const DirectedGraph& parent = *view.parent_;
  GraphBuilder builder(parent.num_nodes());
  for (const Edge& edge : parent.edges()) {
    builder.AddEdge(edge.dst, edge.src).CheckOK();
  }
  view.reversed_ = std::move(builder).Build();
  // Both graphs order edge ids by (src, dst) lexicographically, so the
  // correspondence is a pure permutation recovered by endpoint lookup.
  view.to_parent_.resize(view.reversed_.num_edges());
  for (EdgeId re = 0; re < view.reversed_.num_edges(); ++re) {
    const Edge& edge = view.reversed_.edge(re);
    const EdgeId pe = parent.FindEdge(edge.dst, edge.src);
    IF_CHECK(pe != kInvalidEdge) << "transpose lost an edge";
    view.to_parent_[re] = pe;
  }
  return view;
}

void ReversedGraphView::GatherBlock(const std::uint64_t* parent_words,
                                    std::uint64_t* reversed_words) const {
  const std::size_t m = to_parent_.size();
  for (std::size_t re = 0; re < m; ++re) {
    reversed_words[re] = parent_words[to_parent_[re]];
  }
}

void ReversedGraphView::GatherStrip(const std::uint64_t* parent_strip,
                                    unsigned width,
                                    std::uint64_t* reversed_strip) const {
  const std::size_t m = to_parent_.size();
  for (std::size_t re = 0; re < m; ++re) {
    std::memcpy(reversed_strip + re * width,
                parent_strip + std::size_t{to_parent_[re]} * width,
                width * sizeof(std::uint64_t));
  }
}

Result<RrSketchSet> RrSketchSet::Build(
    const ReversedGraphView& view, const serve::BankGeneration& generation,
    const RrBuildOptions& options) {
  const DirectedGraph& parent = view.parent();
  const NodeId n = parent.num_nodes();
  if (generation.num_edges() != parent.num_edges()) {
    return Status::InvalidArgument(
        "bank generation has ", generation.num_edges(),
        " edges but the graph has ", parent.num_edges());
  }

  // Resolve the target universe (all nodes unless restricted).
  std::vector<NodeId> targets = options.targets;
  if (targets.empty()) {
    targets.resize(n);
    for (NodeId v = 0; v < n; ++v) targets[v] = v;
  } else {
    std::vector<bool> seen(n, false);
    for (const NodeId t : targets) {
      if (t >= n) {
        return Status::OutOfRange("target node ", t, " not in graph with ",
                                  n, " nodes");
      }
      if (seen[t]) {
        return Status::InvalidArgument("duplicate target node ", t);
      }
      seen[t] = true;
    }
  }

  WallTimer timer;
  const std::size_t num_blocks = generation.num_blocks();

  // Eq. 7–8 lane narrowing: run each constraint on the *forward* graph and
  // keep only the surviving I(x, C) lanes, exactly as the conditional
  // query path does — sketches over dead lanes would bias the estimate.
  std::vector<std::uint64_t> lane(num_blocks);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    lane[b] = generation.BlockLaneMask(b);
  }
  std::size_t effective_rows = generation.num_rows();
  if (!options.given.empty()) {
    IF_RETURN_NOT_OK(ValidateConditions(parent, options.given));
    BatchReachabilityWorkspace forward(parent);
    effective_rows = 0;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      for (const FlowConstraint& c : options.given) {
        if (lane[b] == 0) break;
        const std::uint64_t reached =
            forward.RunUntil(parent, {c.source}, generation.BlockEdgeWords(b),
                             c.sink, lane[b]);
        lane[b] = c.must_flow ? reached : lane[b] & ~reached;
      }
      effective_rows += static_cast<std::size_t>(std::popcount(lane[b]));
    }
    if (effective_rows < options.min_conditional_rows) {
      return Status::FailedPrecondition(
          "conditional seed selection: only ", effective_rows, " of ",
          generation.num_rows(),
          " bank rows satisfy the conditions (floor ",
          options.min_conditional_rows, ")");
    }
  }

  RrSketchSet set;
  set.generation_ = generation.id();
  set.model_epoch_ = generation.model_epoch();
  set.universe_ = targets.size();
  set.num_groups_ = targets.size() * num_blocks;
  set.total_rows_ = generation.num_rows();
  set.effective_rows_ = effective_rows;
  set.conditioned_ = !options.given.empty();
  set.num_sketches_ =
      static_cast<std::uint64_t>(effective_rows) * targets.size();

  // Incremental reuse plan: a block whose edge-major plane is bit-identical
  // to the previously indexed generation's would run the exact same reverse
  // passes, so its postings can be lifted from the previous set. Only the
  // default build shape qualifies (unconditioned, all-node universe, same
  // graph and row count) — anything else diffs against the wrong lanes.
  IndexMetrics& metrics = IndexMetrics::Get();
  const std::size_t num_targets = targets.size();
  const bool can_reuse =
      options.previous != nullptr && options.previous_rows != nullptr &&
      options.given.empty() && options.targets.empty() &&
      !options.previous->conditioned() &&
      options.previous->universe() == num_targets &&
      options.previous->num_groups() == num_targets * num_blocks &&
      options.previous->total_rows() == generation.num_rows() &&
      options.previous_rows->num_edges() == generation.num_edges() &&
      options.previous_rows->num_rows() == generation.num_rows();
  std::vector<std::uint8_t> fresh(num_blocks, 1);
  std::size_t reused_blocks = 0;
  if (can_reuse) {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      if (std::memcmp(generation.BlockEdgeWords(b),
                      options.previous_rows->BlockEdgeWords(b),
                      generation.num_edges() * sizeof(std::uint64_t)) == 0) {
        fresh[b] = 0;
        ++reused_blocks;
      }
    }
    metrics.blocks_reused->Increment(reused_blocks);
  }

  // Reverse passes over the fresh blocks: gather the block's plane into
  // transposed edge order once, then one Begin/Seed/Propagate pass per
  // target answers "who reaches t" for all 64 rows of the block
  // simultaneously. Blocks are independent, so they fan out over the pool
  // when one is supplied — each worker task owns its own workspace and
  // gathered plane and fills per-block posting vectors, which the merge
  // below concatenates in block order (bit-identical to the serial loop;
  // TouchedNodes is ascending either way).
  const DirectedGraph& reversed = view.reversed();
  struct NodePosting {
    NodeId node;
    RrPosting posting;
  };
  std::vector<std::vector<NodePosting>> block_raw(num_blocks);
  // Replay width: strips of W consecutive blocks share one reverse pass
  // when the bank is deep enough (graph/strip_reachability.h), so the
  // sketch build consumes 64·W rows per BFS. W=1 keeps the classic
  // per-block loop. Per-word results equal the per-block fixpoints, and
  // postings are emitted per block in the same (target, node) order, so
  // the built set is bit-identical at every width.
  const unsigned strip_words =
      ResolveStripWords(LaneWidth::kAuto, generation.num_rows(),
                        reversed.num_nodes(), reversed.num_edges());
  if (strip_words > 1) {
    std::shared_ptr<const StripPlane> strip_plane =
        generation.AcquireStripPlane(strip_words);
    const std::size_t num_strips = strip_plane->num_strips;
    const auto build_strip = [&](StripWorkspace& workspace,
                                 std::uint64_t* reversed_strip,
                                 std::size_t s) {
      const std::size_t b0 = s * strip_words;
      // Reused and lane-dead blocks ride along with zero lane words: their
      // masks stay zero, so they emit nothing — exactly a skip.
      std::uint64_t strip_lanes[kMaxStripWords] = {};
      std::uint64_t live = 0;
      for (unsigned w = 0; w < strip_words && b0 + w < num_blocks; ++w) {
        if (fresh[b0 + w] != 0) strip_lanes[w] = lane[b0 + w];
        live |= strip_lanes[w];
      }
      if (live == 0) return;
      view.GatherStrip(strip_plane->StripWords(s), strip_words,
                       reversed_strip);
      for (std::size_t ti = 0; ti < num_targets; ++ti) {
        workspace.Begin(reversed);
        workspace.Seed(targets[ti], strip_lanes);
        workspace.Propagate(reversed_strip);
        metrics.reverse_passes->Increment();
        for (const NodeId u : workspace.TouchedNodes()) {
          const std::uint64_t* mask = workspace.ReachedMask(u);
          for (unsigned w = 0; w < strip_words; ++w) {
            if (mask[w] == 0) continue;
            const auto group =
                static_cast<std::uint32_t>(ti * num_blocks + b0 + w);
            block_raw[b0 + w].push_back({u, {group, mask[w]}});
          }
        }
      }
    };
    if (options.pool != nullptr && options.pool->size() > 1 &&
        num_strips > 1) {
      const std::size_t num_chunks =
          std::min(num_strips, options.pool->size() * 4);
      const std::size_t per_chunk =
          (num_strips + num_chunks - 1) / num_chunks;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t begin = c * per_chunk;
        const std::size_t end = std::min(num_strips, begin + per_chunk);
        if (begin >= end) break;
        options.pool->Submit([&, begin, end] {
          auto workspace = StripWorkspace::Create(strip_words, reversed);
          std::vector<std::uint64_t> reversed_strip(parent.num_edges() *
                                                    strip_words);
          for (std::size_t s = begin; s < end; ++s) {
            build_strip(*workspace, reversed_strip.data(), s);
          }
        });
      }
      options.pool->Wait();
    } else {
      auto workspace = StripWorkspace::Create(strip_words, reversed);
      std::vector<std::uint64_t> reversed_strip(parent.num_edges() *
                                                strip_words);
      for (std::size_t s = 0; s < num_strips; ++s) {
        build_strip(*workspace, reversed_strip.data(), s);
      }
    }
  } else {
  const auto build_block = [&](BatchReachabilityWorkspace& workspace,
                               std::uint64_t* reversed_words,
                               std::size_t b) {
    if (fresh[b] == 0 || lane[b] == 0) return;
    view.GatherBlock(generation.BlockEdgeWords(b), reversed_words);
    std::vector<NodePosting>& out = block_raw[b];
    for (std::size_t ti = 0; ti < num_targets; ++ti) {
      workspace.Begin(reversed);
      workspace.Seed(targets[ti], lane[b]);
      workspace.Propagate(reversed_words);
      metrics.reverse_passes->Increment();
      const auto group = static_cast<std::uint32_t>(ti * num_blocks + b);
      for (const NodeId u : workspace.TouchedNodes()) {
        out.push_back({u, {group, workspace.ReachedMask(u)}});
      }
    }
  };
  if (options.pool != nullptr && options.pool->size() > 1 && num_blocks > 1) {
    // A few chunks per worker for balance (block costs vary with how many
    // lanes survive); each chunk amortizes one workspace + plane buffer.
    const std::size_t num_chunks =
        std::min(num_blocks, options.pool->size() * 4);
    const std::size_t per_chunk = (num_blocks + num_chunks - 1) / num_chunks;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(num_blocks, begin + per_chunk);
      if (begin >= end) break;
      options.pool->Submit([&, begin, end] {
        BatchReachabilityWorkspace workspace(reversed);
        std::vector<std::uint64_t> reversed_words(parent.num_edges());
        for (std::size_t b = begin; b < end; ++b) {
          build_block(workspace, reversed_words.data(), b);
        }
      });
    }
    options.pool->Wait();
  } else {
    BatchReachabilityWorkspace workspace(reversed);
    std::vector<std::uint64_t> reversed_words(parent.num_edges());
    for (std::size_t b = 0; b < num_blocks; ++b) {
      build_block(workspace, reversed_words.data(), b);
    }
  }
  }

  // Lift the reused blocks' postings out of the previous set's node-major
  // CSR into the raw (block, target, node) order the merge expects: a
  // stable counting sort by (block, target) key over an ascending node
  // scan reproduces exactly what the reverse passes would have emitted.
  std::vector<NodePosting> reused;
  std::vector<std::size_t> key_offsets;
  if (reused_blocks > 0) {
    const RrSketchSet& prev = *options.previous;
    key_offsets.assign(num_blocks * num_targets + 1, 0);
    for (NodeId u = 0; u < n; ++u) {
      for (const RrPosting& p : prev.Postings(u)) {
        const std::size_t b = p.group % num_blocks;
        if (fresh[b] != 0) continue;
        ++key_offsets[b * num_targets + p.group / num_blocks + 1];
      }
    }
    for (std::size_t k = 1; k < key_offsets.size(); ++k) {
      key_offsets[k] += key_offsets[k - 1];
    }
    reused.resize(key_offsets.back());
    std::vector<std::size_t> cursor(key_offsets.begin(),
                                    key_offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      for (const RrPosting& p : prev.Postings(u)) {
        const std::size_t b = p.group % num_blocks;
        if (fresh[b] != 0) continue;
        reused[cursor[b * num_targets + p.group / num_blocks]++] = {u, p};
      }
    }
  }

  // Merge in block order: fresh blocks contribute their just-built
  // postings, reused blocks their lifted segment.
  std::size_t total = reused.size();
  for (const std::vector<NodePosting>& br : block_raw) total += br.size();
  std::vector<NodePosting> raw;
  raw.reserve(total);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    if (fresh[b] != 0) {
      raw.insert(raw.end(), block_raw[b].begin(), block_raw[b].end());
    } else {
      raw.insert(raw.end(),
                 reused.begin() + static_cast<std::ptrdiff_t>(
                                      key_offsets[b * num_targets]),
                 reused.begin() + static_cast<std::ptrdiff_t>(
                                      key_offsets[(b + 1) * num_targets]));
    }
  }

  // Counting sort the (node, group, lanes) triples into a CSR keyed by
  // node — the layout the selector's gain loop walks sequentially.
  set.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const NodePosting& np : raw) ++set.offsets_[np.node + 1];
  for (std::size_t v = 1; v <= n; ++v) set.offsets_[v] += set.offsets_[v - 1];
  set.postings_.resize(raw.size());
  std::vector<std::size_t> cursor(set.offsets_.begin(),
                                  set.offsets_.end() - 1);
  for (const NodePosting& np : raw) {
    set.postings_[cursor[np.node]++] = np.posting;
  }

  metrics.builds->Increment();
  metrics.postings->Increment(raw.size());
  metrics.build_ms->Record(timer.Millis());
  metrics.generation->Set(static_cast<double>(generation.id()));
  return set;
}

RrIndex::RrIndex(std::shared_ptr<const DirectedGraph> graph,
                 std::size_t num_threads)
    : view_(ReversedGraphView::Build(std::move(graph))),
      pool_(num_threads) {}

Result<std::shared_ptr<const RrSketchSet>> RrIndex::Acquire(
    std::shared_ptr<const serve::BankGeneration> generation) {
  std::shared_ptr<const RrSketchSet> previous;
  std::shared_ptr<const serve::BankGeneration> previous_rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (current_ != nullptr && current_->generation() == generation->id()) {
      return current_;
    }
    previous = current_;
    previous_rows = indexed_rows_;
  }
  // Build outside the lock: inversion is the expensive step and concurrent
  // readers of the previous set must not stall behind it. The previous
  // set + rows are the incremental diff base — unchanged blocks reuse
  // their postings.
  RrBuildOptions options;
  options.pool = &pool_;
  if (previous != nullptr && previous_rows != nullptr) {
    options.previous = previous.get();
    options.previous_rows = previous_rows.get();
  }
  auto built = RrSketchSet::Build(view_, *generation, options);
  IF_RETURN_NOT_OK(built.status());
  auto set = std::make_shared<const RrSketchSet>(std::move(*built));
  std::lock_guard<std::mutex> lock(mutex_);
  // A racing builder may have published the same (or a newer) generation;
  // keep the newest — generations only move forward.
  if (current_ == nullptr || current_->generation() <= set->generation()) {
    current_ = set;
    indexed_rows_ = std::move(generation);
    ever_built_ = true;
    return current_;
  }
  ever_built_ = true;
  return current_->generation() == set->generation() ? current_ : set;
}

void RrIndex::Prime(std::shared_ptr<const serve::BankGeneration> generation) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ever_built_) return;
  }
  (void)Acquire(std::move(generation));
}

}  // namespace infoflow::seedmax
