#include "seedmax/seed_selector.h"

#include <bit>
#include <cmath>
#include <queue>

#include "obs/metrics.h"

namespace infoflow::seedmax {
namespace {

struct SelectMetrics {
  obs::Counter* selections =
      &obs::GetCounter("seedmax.select.selections_total");
  obs::Counter* evaluations =
      &obs::GetCounter("seedmax.select.evaluations_total");
  obs::Counter* prune_hits =
      &obs::GetCounter("seedmax.select.prune_hits_total");
  obs::Counter* popcount_words =
      &obs::GetCounter("seedmax.select.popcount_words_total");

  static SelectMetrics& Get() {
    static SelectMetrics metrics;
    return metrics;
  }
};

/// CELF queue entry: `gain` is exact when computed in round `round`, an
/// upper bound (submodularity) in any later round.
struct Entry {
  std::uint64_t gain;
  NodeId node;
  std::size_t round;
};

struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.node > b.node;  // deterministic: smaller id wins ties
  }
};

}  // namespace

Status SeedMaxOptions::Validate(std::size_t num_nodes) const {
  if (num_seeds == 0) {
    return Status::InvalidArgument("num_seeds must be positive");
  }
  for (const NodeId c : candidates) {
    if (c >= num_nodes) {
      return Status::OutOfRange("candidate node ", c,
                                " not in graph with ", num_nodes, " nodes");
    }
  }
  return Status::OK();
}

std::vector<NodeId> SeedMaxResult::seeds() const {
  std::vector<NodeId> out;
  out.reserve(picks.size());
  for (const SeedPick& pick : picks) out.push_back(pick.node);
  return out;
}

Result<SeedMaxResult> SelectSeeds(const RrSketchSet& sketches,
                                  const SeedMaxOptions& options) {
  IF_RETURN_NOT_OK(options.Validate(sketches.num_nodes()));

  // Dedupe the candidate pool (every node when unrestricted).
  std::vector<NodeId> candidates;
  if (options.candidates.empty()) {
    candidates.resize(sketches.num_nodes());
    for (NodeId v = 0; v < candidates.size(); ++v) candidates[v] = v;
  } else {
    std::vector<bool> seen(sketches.num_nodes(), false);
    for (const NodeId c : options.candidates) {
      if (!seen[c]) {
        seen[c] = true;
        candidates.push_back(c);
      }
    }
  }
  if (options.num_seeds > candidates.size()) {
    return Status::InvalidArgument("num_seeds (", options.num_seeds,
                                   ") exceeds the ", candidates.size(),
                                   " distinct candidates");
  }

  SelectMetrics& metrics = SelectMetrics::Get();
  SeedMaxResult result;
  result.generation = sketches.generation();
  result.model_epoch = sketches.model_epoch();
  result.num_sketches = sketches.num_sketches();
  result.universe = sketches.universe();
  result.total_rows = sketches.total_rows();
  result.effective_rows = sketches.effective_rows();

  std::vector<std::uint64_t> covered(sketches.num_groups(), 0);
  const auto gain_of = [&](NodeId u) {
    const auto postings = sketches.Postings(u);
    std::uint64_t gain = 0;
    for (const RrPosting& p : postings) {
      gain += static_cast<std::uint64_t>(
          std::popcount(p.lanes & ~covered[p.group]));
    }
    metrics.popcount_words->Increment(postings.size());
    ++result.evaluations;
    return gain;
  };

  // Round 0 evaluates every candidate once (coverage is empty, so the
  // posting walk needs no masking — but gain_of keeps one code path).
  std::priority_queue<Entry, std::vector<Entry>, EntryLess> queue;
  for (const NodeId u : candidates) {
    queue.push({gain_of(u), u, 0});
  }

  const double r_total = static_cast<double>(sketches.num_sketches());
  const double scale = static_cast<double>(sketches.universe());
  std::uint64_t covered_total = 0;
  while (result.picks.size() < options.num_seeds) {
    Entry top = queue.top();
    queue.pop();
    if (top.round != result.picks.size()) {
      // Stale upper bound: recompute against the current coverage. If the
      // fresh gain still dominates the best remaining upper bound, the
      // greedy choice is settled — no other candidate can beat it.
      top.gain = gain_of(top.node);
      top.round = result.picks.size();
      if (!queue.empty() && top.gain < queue.top().gain) {
        queue.push(top);
        continue;
      }
      if (!queue.empty()) {
        ++result.prune_hits;
        metrics.prune_hits->Increment();
      }
    }
    // Apply the pick: fold its lanes into the coverage.
    std::uint64_t marginal = 0;
    for (const RrPosting& p : sketches.Postings(top.node)) {
      marginal += static_cast<std::uint64_t>(
          std::popcount(p.lanes & ~covered[p.group]));
      covered[p.group] |= p.lanes;
    }
    covered_total += marginal;
    metrics.selections->Increment();

    SeedPick pick;
    pick.node = top.node;
    pick.marginal_coverage = marginal;
    const double p_hat =
        r_total > 0 ? static_cast<double>(covered_total) / r_total : 0.0;
    pick.spread = scale * p_hat;
    pick.mcse = r_total > 0
                    ? scale * std::sqrt(p_hat * (1.0 - p_hat) / r_total)
                    : 0.0;
    result.picks.push_back(pick);
  }

  if (!result.picks.empty()) {
    result.spread = result.picks.back().spread;
    result.mcse = result.picks.back().mcse;
  }
  metrics.evaluations->Increment(result.evaluations);
  return result;
}

}  // namespace infoflow::seedmax
