/// \file rr_index.h
/// \brief Reverse-reachable sketches over a SampleBank generation.
///
/// The paper's §I motivates learned flow models with a marketing question:
/// which k users maximize expected information reach? Eq. 5 already answers
/// "does u reach t" as an expectation of reachability indicators over
/// retained pseudo-states — and the serve tier's SampleBank keeps thousands
/// of those states resident. Inverting them yields reverse-reachable (RR)
/// sketches in the sense of Frey et al., *Efficient Information Flow
/// Maximization in Probabilistic Graphs*: one sketch per (target, retained
/// state), holding the set of nodes that reach the target in that state.
/// A seed set's expected spread is then proportional to the fraction of
/// sketches it covers, and greedy max-coverage over the sketches gives the
/// classic (1 − 1/e)-approximate seed set without simulating a single
/// fresh cascade.
///
/// Sketches are built **bit-parallel**, not by per-state scalar BFS: the
/// bank's edge-major plane is gathered into reversed-graph edge order once
/// per 64-row block, and one `BatchReachabilityWorkspace` pass seeded at a
/// target on the *reversed* graph computes 64 RR sets at once — node u's
/// reached mask bit s means "u reaches the target in row 64·b + s". The
/// masks are stored lane-packed per node (postings), so greedy coverage
/// counting is popcount over lane words.
///
/// Conditioning (Eq. 7–8) reuses the serve tier's lane-mask discipline:
/// constraints narrow each block's valid-lane mask to the surviving
/// I(x, C) lanes on the *forward* graph before any sketch is built, so a
/// constrained maximization only ever counts admissible pseudo-states.
///
/// `RrIndex` caches the default (unconstrained, all-targets) sketch set
/// per bank generation with the same RCU publish discipline as
/// serve/shard_engine.h's views: immutable once built, swapped by
/// shared_ptr under a mutex, primed eagerly when the server publishes a
/// refresh or drift rebuild so streamed evidence invalidates stale
/// sketches before the next top-k query pays the build.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/flow_query.h"
#include "graph/graph.h"
#include "serve/sample_bank.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoflow::seedmax {

/// \brief A graph's transpose plus the edge-id correspondence needed to
/// gather a parent-edge-major lane plane into reversed-edge order.
///
/// GraphBuilder assigns edge ids by (src, dst) lexicographic order, so the
/// reversed graph's edge ids permute the parent's; `ParentEdge` maps them
/// back and `GatherBlock` applies the permutation to one 64-lane block.
/// Built once per graph and shared by every generation's sketch build.
class ReversedGraphView {
 public:
  /// Builds the transpose of `graph` (must outlive the view via the shared
  /// pointer) and the rev→parent edge map.
  static ReversedGraphView Build(std::shared_ptr<const DirectedGraph> graph);

  /// The original (forward) graph.
  const DirectedGraph& parent() const { return *parent_; }
  /// Shared handle on the forward graph.
  const std::shared_ptr<const DirectedGraph>& parent_ptr() const {
    return parent_;
  }
  /// The transposed graph: edge (u, v) here iff (v, u) in parent().
  const DirectedGraph& reversed() const { return reversed_; }

  /// Parent edge id of reversed edge `rev_edge`.
  EdgeId ParentEdge(EdgeId rev_edge) const { return to_parent_[rev_edge]; }

  /// Gathers one block's parent-edge-major words (`parent().num_edges()`
  /// entries) into reversed edge order: out[re] = in[ParentEdge(re)].
  void GatherBlock(const std::uint64_t* parent_words,
                   std::uint64_t* reversed_words) const;

  /// Strip variant: gathers one strip-major strip (`width` words per edge,
  /// see graph/strip_plane.h) into reversed edge order —
  /// out[re·width + w] = in[ParentEdge(re)·width + w].
  void GatherStrip(const std::uint64_t* parent_strip, unsigned width,
                   std::uint64_t* reversed_strip) const;

 private:
  std::shared_ptr<const DirectedGraph> parent_;
  DirectedGraph reversed_;
  std::vector<EdgeId> to_parent_;
};

/// \brief One lane-packed posting: node covers the sketches of sketch
/// group `group` in the lanes (bits) of `lanes`.
///
/// A *sketch group* is one (target, block) pair — 64 potential sketches
/// packed in a word; `group = target_index · num_blocks + block`. The
/// posting's lanes are always a subset of the group's surviving lane mask.
struct RrPosting {
  std::uint32_t group;
  std::uint64_t lanes;
};

class RrSketchSet;  // below

/// \brief Sketch-build tuning.
struct RrBuildOptions {
  /// Spread universe: RR sketches are rooted at every listed target (the
  /// constrained flow-maximization case — e.g. a target community whose
  /// coverage the seeds should maximize). Empty = every node, which makes
  /// the coverage estimate the exact bank-replay spread. Duplicates are
  /// rejected.
  std::vector<NodeId> targets;
  /// Eq. 7–8 conditioning: only pseudo-states satisfying every constraint
  /// contribute sketches (survivor lanes are masked out per block on the
  /// forward graph before the reverse passes run).
  FlowConditions given;
  /// Minimum surviving rows for a conditioned build — mirrors the query
  /// engine's conditional floor so estimates never silently degenerate.
  std::size_t min_conditional_rows = 32;
  /// Worker pool for the reverse passes, parallel across 64-row blocks
  /// (each worker owns its own BFS workspace and gathered plane); null →
  /// serial. Per-block postings are merged back in block order, so the
  /// built set is bit-identical to a serial build.
  ThreadPool* pool = nullptr;
  /// \brief Incremental rebuild (the RrIndex refresh path): blocks whose
  /// edge-major planes are bit-identical between `previous_rows` and the
  /// new generation reuse `previous`'s postings instead of re-running
  /// their reverse passes — MH chains that moved few rows between
  /// generations only pay for the blocks that actually changed. Both must
  /// be set together, and reuse only engages for the default build shape
  /// (unconditioned, all-node targets, same graph, same row count); any
  /// mismatch silently falls back to a full build. The result is
  /// bit-identical to a from-scratch build either way.
  const RrSketchSet* previous = nullptr;
  const serve::BankGeneration* previous_rows = nullptr;
};

/// \brief An immutable set of RR sketches for one bank generation.
///
/// Storage is a CSR over nodes: `Postings(u)` lists every sketch group u
/// appears in with its lane word. Thread-safe by construction after build.
class RrSketchSet {
 public:
  /// \brief Runs the bit-parallel reverse passes and packs the postings.
  /// Fails on out-of-range/duplicate targets, invalid conditions, or a
  /// conditioned build whose surviving rows fall below the floor.
  static Result<RrSketchSet> Build(const ReversedGraphView& view,
                                   const serve::BankGeneration& generation,
                                   const RrBuildOptions& options = {});

  /// Bank generation id the sketches were inverted from.
  std::uint64_t generation() const { return generation_; }
  /// Model epoch of that generation.
  std::uint64_t model_epoch() const { return model_epoch_; }
  /// Spread universe size (n for all-node targets, |targets| otherwise):
  /// the scale factor of the unbiased spread estimate.
  std::size_t universe() const { return universe_; }
  /// Total sketches R = Σ_groups popcount(surviving lanes).
  std::uint64_t num_sketches() const { return num_sketches_; }
  /// Sketch groups (targets × blocks); sizing for coverage scratch.
  std::size_t num_groups() const { return num_groups_; }
  /// Rows in the source generation.
  std::size_t total_rows() const { return total_rows_; }
  /// Rows surviving the conditioning (== total_rows() unconditioned).
  std::size_t effective_rows() const { return effective_rows_; }
  /// True when the build was conditioned on constraints.
  bool conditioned() const { return conditioned_; }
  /// Number of nodes the CSR spans.
  std::size_t num_nodes() const { return offsets_.size() - 1; }

  /// The sketch groups node `u` reaches, with lane words.
  std::span<const RrPosting> Postings(NodeId u) const {
    return {postings_.data() + offsets_[u],
            postings_.data() + offsets_[u + 1]};
  }

 private:
  RrSketchSet() = default;

  std::uint64_t generation_ = 0;
  std::uint64_t model_epoch_ = 0;
  std::size_t universe_ = 0;
  std::uint64_t num_sketches_ = 0;
  std::size_t num_groups_ = 0;
  std::size_t total_rows_ = 0;
  std::size_t effective_rows_ = 0;
  bool conditioned_ = false;
  std::vector<std::size_t> offsets_;
  std::vector<RrPosting> postings_;
};

/// \brief Generation-keyed cache of the default sketch set, with the same
/// publish discipline as ShardEngine: Acquire gathers (builds) on first
/// sight of a generation and hands out immutable shared_ptr snapshots;
/// readers holding an old set are never invalidated.
class RrIndex {
 public:
  /// Builds the reversed view once and spins the sketch-build worker pool
  /// (0 → hardware concurrency); sketch sets are built lazily.
  explicit RrIndex(std::shared_ptr<const DirectedGraph> graph,
                   std::size_t num_threads = 0);

  /// The shared reversed view (for ad-hoc constrained builds).
  const ReversedGraphView& view() const { return view_; }

  /// The sketch-build worker pool (for ad-hoc constrained builds, which
  /// parallelize across blocks exactly like the cached default build).
  ThreadPool& pool() { return pool_; }

  /// \brief The default (all-targets, unconditioned) sketch set for
  /// `generation`, building and publishing it if this generation has not
  /// been seen yet. The generation handle is retained alongside the
  /// published set so the *next* build can diff block planes against it
  /// and reuse the postings of unchanged blocks (at most one extra
  /// generation is kept alive at a time).
  Result<std::shared_ptr<const RrSketchSet>> Acquire(
      std::shared_ptr<const serve::BankGeneration> generation);

  /// \brief Epoch fan-out hook, called by the server next to
  /// ShardSet::Prime when a refresh or drift rebuild publishes: eagerly
  /// re-inverts the new generation **iff a sketch set was ever built** —
  /// a daemon that never served a top-k query does not pay sketch builds
  /// on every refresh, while one that did keeps its index warm (and
  /// streamed evidence deterministically invalidates stale sketches).
  void Prime(std::shared_ptr<const serve::BankGeneration> generation);

 private:
  ReversedGraphView view_;
  ThreadPool pool_;
  std::mutex mutex_;
  std::shared_ptr<const RrSketchSet> current_;
  /// The rows current_ was inverted from — the diff base of the next
  /// incremental build.
  std::shared_ptr<const serve::BankGeneration> indexed_rows_;
  bool ever_built_ = false;
};

}  // namespace infoflow::seedmax
