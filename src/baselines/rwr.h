/// \file rwr.h
/// \brief Random Walk with Restart — the comparison baseline of §IV-E
/// (Fig. 5).
///
/// RWR computes the stationary distribution of a walker that, at each step,
/// follows an out-edge with probability (1 − c) — choosing among out-edges
/// proportionally to their weight — or teleports back to the source with
/// probability c. Prior work used the resulting visit scores as a proxy for
/// information-flow likelihood. The paper's point (which Fig. 5
/// demonstrates): RWR is a *similarity measure*, not a probability — it
/// cannot express joint/conditional flow and its scores are poorly
/// calibrated as flow probabilities. We implement it faithfully so the
/// bucket experiment can show exactly that.

#pragma once

#include <vector>

#include "core/icm.h"
#include "graph/graph.h"
#include "util/status.h"

namespace infoflow {

/// \brief RWR parameters.
struct RwrOptions {
  /// Restart (teleport) probability c.
  double restart_prob = 0.15;
  /// Power-iteration cap.
  std::size_t max_iterations = 500;
  /// L1 convergence threshold.
  double tolerance = 1e-12;

  Status Validate() const;
};

/// \brief The RWR outcome: per-node stationary visit scores plus
/// diagnostics.
struct RwrResult {
  /// scores[v] = stationary probability of the walker being at v; sums
  /// to 1.
  std::vector<double> scores;
  std::size_t iterations = 0;
  bool converged = false;
};

/// \brief Runs RWR from `source` on the model's graph, using the edge
/// activation probabilities as transition weights (row-normalized). Nodes
/// with no positive-weight out-edge teleport back to the source.
RwrResult RandomWalkWithRestart(const PointIcm& model, NodeId source,
                                const RwrOptions& options = {});

/// \brief The Fig. 5 predictor: RWR visit scores rescaled into [0, 1] as a
/// pseudo flow "probability" per sink — score divided by the maximum
/// non-source score (1 for the source itself). This is the kind of
/// similarity-as-probability reading the paper critiques.
std::vector<double> RwrFlowScores(const PointIcm& model, NodeId source,
                                  const RwrOptions& options = {});

}  // namespace infoflow
