#include "baselines/rwr.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace infoflow {

Status RwrOptions::Validate() const {
  if (restart_prob <= 0.0 || restart_prob >= 1.0) {
    return Status::InvalidArgument("restart_prob must be in (0,1), got ",
                                   restart_prob);
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  return Status::OK();
}

RwrResult RandomWalkWithRestart(const PointIcm& model, NodeId source,
                                const RwrOptions& options) {
  options.Validate().CheckOK();
  const DirectedGraph& graph = model.graph();
  IF_CHECK(source < graph.num_nodes()) << "source " << source
                                       << " out of range";
  const std::size_t n = graph.num_nodes();
  const double c = options.restart_prob;

  // Row-normalized transition weights.
  std::vector<double> out_weight(n, 0.0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    out_weight[graph.edge(e).src] += model.prob(e);
  }

  std::vector<double> scores(n, 0.0);
  scores[source] = 1.0;
  std::vector<double> next(n, 0.0);

  RwrResult result;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const double mass = scores[u];
      if (mass == 0.0) continue;
      if (out_weight[u] <= 0.0) {
        dangling += mass;  // no exit: the walker restarts
        continue;
      }
      const double step_mass = (1.0 - c) * mass / out_weight[u];
      for (EdgeId e : graph.OutEdges(u)) {
        next[graph.edge(e).dst] += step_mass * model.prob(e);
      }
    }
    next[source] += c * (1.0 - dangling) + dangling;
    double l1 = 0.0;
    for (std::size_t v = 0; v < n; ++v) l1 += std::fabs(next[v] - scores[v]);
    scores.swap(next);
    if (l1 < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(scores);
  return result;
}

std::vector<double> RwrFlowScores(const PointIcm& model, NodeId source,
                                  const RwrOptions& options) {
  const RwrResult rwr = RandomWalkWithRestart(model, source, options);
  std::vector<double> out(rwr.scores.size(), 0.0);
  double max_other = 0.0;
  for (std::size_t v = 0; v < rwr.scores.size(); ++v) {
    if (v != source) max_other = std::max(max_other, rwr.scores[v]);
  }
  for (std::size_t v = 0; v < rwr.scores.size(); ++v) {
    if (v == source) {
      out[v] = 1.0;
    } else if (max_other > 0.0) {
      out[v] = rwr.scores[v] / max_other;
    }
  }
  return out;
}

}  // namespace infoflow
