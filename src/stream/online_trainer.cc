#include "stream/online_trainer.h"

#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "util/check.h"

namespace infoflow::stream {

namespace {

/// scale_ re-base threshold: far above the denormal range, far below any
/// realistic decay product a window keeps relevant.
constexpr double kMinScale = 1e-150;

}  // namespace

Status OnlineTrainerOptions::Validate() const {
  if (!(decay > 0.0) || decay > 1.0) {
    return Status::InvalidArgument("decay must be in (0, 1], got ", decay);
  }
  return Status::OK();
}

OnlineTrainer::OnlineTrainer(std::shared_ptr<const DirectedGraph> graph,
                             OnlineTrainerOptions options)
    : graph_(std::move(graph)),
      options_(options),
      successes_(graph_->num_edges(), 0.0),
      failures_(graph_->num_edges(), 0.0),
      metric_records_(&obs::GetCounter("stream.trainer.records_total")),
      metric_evicted_(&obs::GetCounter("stream.trainer.evicted_total")),
      metric_window_(&obs::GetGauge("stream.trainer.window_records")) {
  IF_CHECK(graph_ != nullptr);
  options_.Validate().CheckOK();
}

void OnlineTrainer::ApplyAttributed(const AttributedObject& object,
                                    double signed_inv) {
  // Mirror of learn/UpdateBetaIcmWithObject: out-edges of active nodes are
  // exactly the edges with an active parent; active edges bump α, silent
  // ones β. Same loop here so the counts agree term by term.
  std::vector<std::uint8_t> edge_active(graph_->num_edges(), 0);
  for (EdgeId e : object.active_edges) edge_active[e] = 1;
  for (NodeId v : object.active_nodes) {
    for (EdgeId e : graph_->OutEdges(v)) {
      if (edge_active[e]) {
        successes_[e] += signed_inv;
      } else {
        failures_[e] += signed_inv;
      }
    }
  }
}

void OnlineTrainer::RenormalizeIfNeeded() {
  if (scale_ >= kMinScale) return;
  // Fold the scale into the stored counts (and the window residuals) and
  // reset it; effective counts are unchanged.
  for (double& s : successes_) s *= scale_;
  for (double& f : failures_) f *= scale_;
  for (AttributedEntry& entry : attributed_window_) entry.inv_scale *= scale_;
  scale_ = 1.0;
}

Status OnlineTrainer::AbsorbAttributed(const AttributedObject& object) {
  IF_RETURN_NOT_OK(ValidateAttributedObject(*graph_, object));
  scale_ *= options_.decay;  // ages every accumulated count in O(1)
  RenormalizeIfNeeded();
  const double inv = 1.0 / scale_;
  ApplyAttributed(object, inv);
  if (options_.window > 0) {
    attributed_window_.push_back({object, inv});
    while (attributed_window_.size() > options_.window) {
      ApplyAttributed(attributed_window_.front().object,
                      -attributed_window_.front().inv_scale);
      attributed_window_.pop_front();
      metric_evicted_->Increment();
    }
  }
  ++attributed_absorbed_;
  metric_records_->Increment();
  metric_window_->Set(static_cast<double>(attributed_window_.size() +
                                          trace_window_.size()));
  return Status::OK();
}

Status OnlineTrainer::AbsorbTrace(const ObjectTrace& trace) {
  if (options_.decay != 1.0) {
    return Status::FailedPrecondition(
        "exponential decay applies to attributed Beta counts only; summary "
        "rows are integral — use the sliding window to age traces out");
  }
  std::set<NodeId> seen;
  for (const Activation& activation : trace.activations) {
    if (activation.node >= graph_->num_nodes()) {
      return Status::OutOfRange("trace node ", activation.node,
                                " out of range; n=", graph_->num_nodes());
    }
    if (!std::isfinite(activation.time)) {
      return Status::InvalidArgument("trace node ", activation.node,
                                     " has a non-finite time");
    }
    if (!seen.insert(activation.node).second) {
      return Status::InvalidArgument("trace activates node ", activation.node,
                                     " twice");
    }
  }
  ApplyTrace(trace, /*add=*/true);
  if (options_.window > 0) {
    trace_window_.push_back(trace);
    while (trace_window_.size() > options_.window) {
      ApplyTrace(trace_window_.front(), /*add=*/false);
      trace_window_.pop_front();
      metric_evicted_->Increment();
    }
  }
  ++traces_absorbed_;
  metric_records_->Increment();
  metric_window_->Set(static_cast<double>(attributed_window_.size() +
                                          trace_window_.size()));
  return Status::OK();
}

Status OnlineTrainer::Absorb(const EvidenceRecord& record) {
  if (const auto* object = std::get_if<AttributedObject>(&record)) {
    return AbsorbAttributed(*object);
  }
  return AbsorbTrace(std::get<ObjectTrace>(record));
}

void OnlineTrainer::ApplyTrace(const ObjectTrace& trace, bool add) {
  // Candidate sinks this trace can touch: an active node with in-edges can
  // raise `unexplained` (it activated with no prior parent), and an
  // out-neighbor of an active node can gain a characteristic row. All other
  // sinks see an empty mask and an inactive sink — exactly the traces
  // BuildSinkSummary's loop skips.
  std::set<NodeId> candidates;
  for (const Activation& activation : trace.activations) {
    if (graph_->InDegree(activation.node) > 0) {
      candidates.insert(activation.node);
    }
    for (EdgeId e : graph_->OutEdges(activation.node)) {
      candidates.insert(graph_->edge(e).dst);
    }
  }

  const SummaryOptions& summary = options_.unattributed.summary;
  for (const NodeId sink : candidates) {
    const double sink_time = trace.TimeOf(sink);
    const bool sink_active =
        sink_time != std::numeric_limits<double>::infinity();
    // Same characteristic computation as BuildSinkSummary, parents in
    // InEdges order.
    std::string mask;
    bool any = false;
    for (EdgeId e : graph_->InEdges(sink)) {
      const double parent_time = trace.TimeOf(graph_->edge(e).src);
      bool prior;
      if (summary.policy == CharacteristicPolicy::kAllPrior) {
        prior = parent_time < sink_time;
      } else {
        prior = sink_active
                    ? (parent_time < sink_time &&
                       parent_time >= sink_time - summary.discrete_step)
                    : parent_time < sink_time;
      }
      mask.push_back(prior ? 1 : 0);
      any = any || prior;
    }
    if (!any) {
      if (!sink_active) continue;
      SinkState& state = sinks_[sink];
      if (add) {
        ++state.unexplained;
      } else {
        IF_CHECK(state.unexplained > 0) << "window eviction underflow";
        --state.unexplained;
      }
      continue;
    }
    SinkState& state = sinks_[sink];
    if (add) {
      SummaryRow& row = state.rows[mask];
      if (row.mask.empty()) row.mask.assign(mask.begin(), mask.end());
      ++row.count;
      if (sink_active) ++row.leaks;
    } else {
      const auto it = state.rows.find(mask);
      IF_CHECK(it != state.rows.end()) << "window eviction of an unseen row";
      --it->second.count;
      if (sink_active) --it->second.leaks;
      if (it->second.count == 0) state.rows.erase(it);
    }
  }
}

SinkSummary OnlineTrainer::SummaryForSink(NodeId sink) const {
  IF_CHECK(sink < graph_->num_nodes()) << "sink " << sink << " out of range";
  SinkSummary summary;
  summary.sink = sink;
  for (EdgeId e : graph_->InEdges(sink)) {
    summary.parents.push_back(graph_->edge(e).src);
    summary.parent_edges.push_back(e);
  }
  const auto it = sinks_.find(sink);
  if (it == sinks_.end()) return summary;
  summary.unexplained_objects = it->second.unexplained;
  summary.rows.reserve(it->second.rows.size());
  // The map is keyed by the mask bytes, the same keying BuildSinkSummary
  // uses — rows come out in the identical order.
  for (const auto& [mask, row] : it->second.rows) {
    summary.rows.push_back(row);
  }
  return summary;
}

BetaIcm OnlineTrainer::AttributedModel() const {
  std::vector<double> alphas(graph_->num_edges());
  std::vector<double> betas(graph_->num_edges());
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    alphas[e] = 1.0 + successes_[e] * scale_;
    betas[e] = 1.0 + failures_[e] * scale_;
  }
  return BetaIcm(graph_, std::move(alphas), std::move(betas));
}

Result<UnattributedModel> OnlineTrainer::FitUnattributed(Rng& rng) const {
  return TrainUnattributedFromSummaries(
      graph_, [this](NodeId sink) { return SummaryForSink(sink); },
      options_.unattributed, rng);
}

Result<PointIcm> OnlineTrainer::CurrentPointModel(Rng& rng) const {
  if (attributed_absorbed_ > 0) return AttributedModel().ExpectedIcm();
  if (traces_absorbed_ > 0) {
    auto model = FitUnattributed(rng);
    if (!model.ok()) return model.status();
    return model->ToPointIcm();
  }
  return Status::NotFound("no evidence absorbed yet");
}

}  // namespace infoflow::stream
