#include "stream/model_epoch.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace infoflow::stream {

double MaxAbsDrift(const PointIcm& a, const PointIcm& b) {
  const std::vector<double>& pa = a.probs();
  const std::vector<double>& pb = b.probs();
  IF_CHECK(pa.size() == pb.size())
      << "drift between models over different graphs (" << pa.size() << " vs "
      << pb.size() << " edges)";
  double drift = 0.0;
  for (std::size_t e = 0; e < pa.size(); ++e) {
    drift = std::max(drift, std::fabs(pa[e] - pb[e]));
  }
  return drift;
}

EpochPublisher::EpochPublisher(PointIcm initial)
    : mutex_(std::make_unique<std::mutex>()),
      current_(std::make_shared<const ModelEpoch>(1, std::move(initial), 0.0)),
      metric_id_(&obs::GetGauge("stream.epoch.id")),
      metric_drift_(&obs::GetGauge("stream.epoch.drift")),
      metric_age_s_(&obs::GetGauge("stream.epoch.age_s")),
      metric_publishes_(&obs::GetCounter("stream.epoch.publishes_total")),
      metric_swap_ms_(&obs::GetHistogram(
          "stream.epoch.swap_ms",
          {0.01, 0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0})) {
  metric_id_->Set(1.0);
  metric_drift_->Set(0.0);
  metric_publishes_->Increment();
}

std::shared_ptr<const ModelEpoch> EpochPublisher::Current() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return current_;
}

std::shared_ptr<const ModelEpoch> EpochPublisher::Publish(PointIcm next) {
  WallTimer swap;
  // Prev-read, drift, id mint, and swap form one critical section: two
  // concurrent publishers must not both diff against the same predecessor
  // and mint duplicate ids. Readers block only for the O(edges) drift scan
  // — cheap next to the fit that produced `next`.
  std::shared_ptr<const ModelEpoch> epoch;
  double drift;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    drift = MaxAbsDrift(current_->model, next);
    epoch = std::make_shared<const ModelEpoch>(current_->id + 1,
                                               std::move(next), drift);
    current_ = epoch;
    age_.Restart();
  }
  metric_id_->Set(static_cast<double>(epoch->id));
  metric_drift_->Set(drift);
  metric_age_s_->Set(0.0);
  metric_publishes_->Increment();
  metric_swap_ms_->Record(swap.Millis());
  return epoch;
}

double EpochPublisher::AgeSeconds() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const double age = age_.Seconds();
  metric_age_s_->Set(age);
  return age;
}

}  // namespace infoflow::stream
