/// \file ingestor.h
/// \brief Glue between a live evidence feed and the serving stack: absorbs
/// records through an OnlineTrainer and periodically publishes ModelEpochs.
///
/// Two paths feed the same trainer:
///
///  - **Synchronous** — `IngestLine` is called by the serve loop for every
///    `{"ingest": ...}` request; the record is parsed, absorbed, and the
///    acknowledgement carries the resulting totals and current epoch id.
///  - **Side-channel** — `StartFeed` tails a file or FIFO on an
///    EvidenceStream reader thread; a consumer thread drains the bounded
///    queue into the trainer. Queries are never blocked by ingestion: the
///    published epoch is an immutable snapshot.
///
/// Every `epoch_every` absorbed records (and once more when a feed drains)
/// the ingestor fits the current model and publishes it via EpochPublisher;
/// the registered epoch callback lets the server threshold the epoch's
/// drift and trigger a background SampleBank rebuild.
///
/// Reproducibility: the k-th fit draws from
/// `Rng(MultiChainSampler::DeriveChainSeed(seed, k))` — restarting a daemon
/// on the same feed re-derives the same fit seeds.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/icm.h"
#include "obs/metrics.h"
#include "stream/evidence_stream.h"
#include "stream/model_epoch.h"
#include "stream/online_trainer.h"
#include "util/status.h"
#include "util/timer.h"

namespace infoflow::stream {

/// \brief Ingestion tuning.
struct IngestorOptions {
  /// Forgetting and fit configuration for the wrapped OnlineTrainer.
  OnlineTrainerOptions trainer;
  /// How bare feed lines are interpreted (the NDJSON envelope and the
  /// serve verb are self-describing).
  StreamFormat format = StreamFormat::kAuto;
  /// Publish a fresh ModelEpoch every this many absorbed records
  /// (0 is coerced to 1: publish per record).
  std::size_t epoch_every = 64;
  /// Feed queue bound between the reader and the consumer.
  std::size_t queue_capacity = 1024;
  /// What a full feed queue does (see QueueOverflowPolicy).
  QueueOverflowPolicy queue_policy = QueueOverflowPolicy::kPark;
  /// Base seed for the per-publish fit rngs (unattributed estimators).
  std::uint64_t seed = 1;

  /// Validates the option values (delegates to the trainer's).
  Status Validate() const;
};

/// \brief Acknowledgement for one synchronously ingested record.
struct IngestAck {
  /// Records absorbed over the ingestor's lifetime, both paths.
  std::uint64_t absorbed_total = 0;
  /// The current (possibly just-published) epoch id.
  std::uint64_t epoch = 0;
};

/// \brief Owns the trainer, the epoch publisher, and (when a feed is
/// attached) the reader + consumer threads.
///
/// Thread-safety: all public methods are safe to call concurrently; the
/// trainer is serialized behind one mutex (absorbing is cheap next to the
/// query path's row scans).
class StreamIngestor {
 public:
  /// `initial` seeds epoch 1 — the model the daemon started serving with.
  StreamIngestor(std::shared_ptr<const DirectedGraph> graph, PointIcm initial,
                 IngestorOptions options);
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  /// \brief Parses and absorbs one record synchronously (the serve
  /// `ingest` verb). `format` from the options applies to bare lines.
  /// Invalid records return the parse/validation error and change nothing.
  Result<IngestAck> IngestLine(const std::string& line);

  /// \brief Starts tailing `path` (regular file or FIFO; a FIFO is opened
  /// read-write so the feed survives writers coming and going). One feed
  /// at a time.
  Status StartFeed(const std::string& path);

  /// Stops the feed threads, if any. Idempotent.
  void StopFeed();

  /// \brief Registers the post-publish hook (server drift trigger);
  /// replaces any previous callback (nullptr detaches). The callback is
  /// invoked in strict epoch order — it runs under the publish lock, so it
  /// must not call back into PublishNow or ingest methods.
  void SetEpochCallback(
      std::function<void(std::shared_ptr<const ModelEpoch>)> callback);

  /// The current epoch (never null; epoch 1 is the initial model).
  std::shared_ptr<const ModelEpoch> CurrentEpoch() const;

  /// \brief Fits and publishes an epoch from the current trainer state
  /// immediately, regardless of the epoch_every cadence. Returns the new
  /// epoch, or the fit error (e.g. no evidence absorbed yet).
  Result<std::shared_ptr<const ModelEpoch>> PublishNow();

  /// Records absorbed over the ingestor's lifetime.
  std::uint64_t absorbed() const;

  /// Records rejected (parse or validation) over the lifetime.
  std::uint64_t rejected() const;

  /// Feed-queue depth snapshot (racy by design, like EvidenceQueue::Depth);
  /// 0 when no feed is attached. The serve `health` verb reports this.
  std::size_t queue_depth() const;

  const IngestorOptions& options() const { return options_; }

 private:
  /// Absorbs under the trainer lock; publishes on the cadence.
  Status AbsorbRecord(const EvidenceRecord& record);

  /// Fits + publishes under publish_mutex_, so the epoch sequence matches
  /// the fit sequence even when called concurrently (feed consumer + serve
  /// connections). Requires trainer_mutex_ NOT held. Returns the fit error
  /// when the trainer cannot produce a model yet.
  Result<std::shared_ptr<const ModelEpoch>> Publish();

  /// Feed consumer loop: drains queue_ into the trainer.
  void ConsumeLoop();

  std::shared_ptr<const DirectedGraph> graph_;
  IngestorOptions options_;

  /// Serializes fit+publish pairs (see Publish); acquired before
  /// trainer_mutex_, never the other way around.
  std::mutex publish_mutex_;

  mutable std::mutex trainer_mutex_;
  OnlineTrainer trainer_;
  std::uint64_t absorbed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t since_publish_ = 0;
  std::uint64_t publish_seq_ = 0;
  WallTimer rate_timer_;

  EpochPublisher publisher_;

  std::mutex callback_mutex_;
  std::function<void(std::shared_ptr<const ModelEpoch>)> callback_;

  std::shared_ptr<EvidenceQueue> queue_;
  std::unique_ptr<EvidenceStream> feed_;
  std::thread consumer_;

  obs::Counter* metric_absorbed_;
  obs::Counter* metric_rejected_;
  obs::Gauge* metric_events_per_s_;
};

}  // namespace infoflow::stream
