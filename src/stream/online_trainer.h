/// \file online_trainer.h
/// \brief Incremental learning from streamed evidence, with exponential
/// decay and sliding-window forgetting.
///
/// Both of the paper's learners are naturally incremental. The attributed
/// trainer (§II-A) is conjugate counting — absorbing one object is a batch
/// of per-edge Beta count deltas, and counting is order-independent, so an
/// online pass over a stream is *algebraically identical* to a batch pass
/// over the collected file. The unattributed learner consumes per-sink
/// evidence summaries (§V-B) that are themselves additive: one trace
/// increments the (count, leaks) cells of the characteristic rows it
/// exhibits, so summaries can be maintained record by record and handed to
/// the shared estimator loop (learn/TrainUnattributedFromSummaries).
///
/// Forgetting, for non-stationary streams:
///
///  - **Exponential decay** (attributed only): before each absorb, every
///    accumulated count is multiplied by `decay`. Implemented as a global
///    scale factor — absorb multiplies `scale ← scale·decay` and adds
///    `1/scale` to the touched cells, so aging all m edges costs O(1).
///    Effective counts are `stored · scale`. Unattributed summaries hold
///    integer (count, leaks) cells; fractional decay is rejected there.
///  - **Sliding window**: at most `window` records (per evidence kind) are
///    retained; absorbing past the limit reverses the oldest record's
///    increments exactly — with decay, subtracting its stored `1/scale`
///    removes precisely its decayed residual.
///
/// **Batch equivalence**: with decay = 1 and window = ∞ (the defaults) all
/// arithmetic is integer-valued and order-independent, so the online model
/// is *bit-identical* — not approximately equal — to the batch trainer on
/// the same records in any order: Beta counts match
/// TrainBetaIcmFromAttributed exactly, and the unattributed fit consumes
/// the identical summaries through the identical estimator/rng sequence as
/// TrainUnattributedModel. tests/test_stream.cc asserts this property on
/// shuffled evidence.
///
/// Thread-safety: none — callers (stream/StreamIngestor) serialize access.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/beta_icm.h"
#include "core/icm.h"
#include "learn/attributed.h"
#include "learn/model_trainer.h"
#include "learn/summary.h"
#include "learn/unattributed.h"
#include "obs/metrics.h"
#include "stats/rng.h"
#include "stream/evidence_stream.h"
#include "util/status.h"

namespace infoflow::stream {

/// \brief Forgetting and fit configuration.
struct OnlineTrainerOptions {
  /// Multiplicative aging applied to all accumulated attributed counts per
  /// absorbed attributed record; 1 = never forget. Must be in (0, 1].
  double decay = 1.0;
  /// Maximum records retained per evidence kind; 0 = unbounded. Absorbing
  /// an (window+1)-th record evicts the oldest exactly.
  std::size_t window = 0;
  /// Estimator configuration for FitUnattributed (method, summary policy,
  /// no-evidence mean — identical meaning to the batch trainer).
  UnattributedTrainOptions unattributed;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief Absorbs evidence records one at a time and produces models on
/// demand.
class OnlineTrainer {
 public:
  /// `graph` fixes the topology every record is validated against.
  OnlineTrainer(std::shared_ptr<const DirectedGraph> graph,
                OnlineTrainerOptions options);

  /// \brief Folds one attributed object in: per §II-A, every out-edge of
  /// an active node gets α += 1 (edge active) or β += 1 (edge silent),
  /// scaled by the decay machinery. Validates first; invalid records leave
  /// the state untouched.
  Status AbsorbAttributed(const AttributedObject& object);

  /// \brief Folds one unattributed trace into the per-sink summaries it
  /// touches (the characteristic rows of §V-B). Requires decay == 1
  /// (summary cells are integral counts). Validates first.
  Status AbsorbTrace(const ObjectTrace& trace);

  /// Dispatches on the record's kind.
  Status Absorb(const EvidenceRecord& record);

  /// \brief The attributed model: Beta(1 + successes·scale,
  /// 1 + failures·scale) per edge. With decay=1/window=∞ this is exactly
  /// TrainBetaIcmFromAttributed over the absorbed objects.
  BetaIcm AttributedModel() const;

  /// \brief Runs the shared estimator loop over the incrementally
  /// maintained summaries. With window=∞ this is exactly
  /// TrainUnattributedModel over the absorbed traces (same rows, same row
  /// order, same rng consumption).
  Result<UnattributedModel> FitUnattributed(Rng& rng) const;

  /// \brief The point model a ModelEpoch publishes: the attributed
  /// expected model p = α/(α+β) when any attributed records have arrived,
  /// else the unattributed fit's means. NotFound before any record.
  Result<PointIcm> CurrentPointModel(Rng& rng) const;

  /// \brief The current summary for one sink, assembled from the
  /// incremental state (same parents / row keying / row order as
  /// BuildSinkSummary). Exposed for FitUnattributed and tests.
  SinkSummary SummaryForSink(NodeId sink) const;

  /// Records currently inside the window, per kind.
  std::size_t attributed_in_window() const { return attributed_window_.size(); }
  std::size_t traces_in_window() const { return trace_window_.size(); }

  /// Records absorbed over the trainer's lifetime, per kind.
  std::uint64_t attributed_absorbed() const { return attributed_absorbed_; }
  std::uint64_t traces_absorbed() const { return traces_absorbed_; }

  const std::shared_ptr<const DirectedGraph>& graph_ptr() const {
    return graph_;
  }
  const OnlineTrainerOptions& options() const { return options_; }

 private:
  /// Incremental per-sink summary state: the map mirrors BuildSinkSummary's
  /// mask-string keying so assembled rows come out in the identical order.
  struct SinkState {
    std::map<std::string, SummaryRow> rows;
    std::uint64_t unexplained = 0;
  };

  /// One retained attributed record with the inverse scale it was absorbed
  /// at (eviction subtracts exactly its decayed residual).
  struct AttributedEntry {
    AttributedObject object;
    double inv_scale;
  };

  /// Applies one object's ±1/scale count deltas (sign = +1 absorb,
  /// -1 evict).
  void ApplyAttributed(const AttributedObject& object, double signed_inv);

  /// Applies one trace's ±1 summary increments.
  void ApplyTrace(const ObjectTrace& trace, bool add);

  /// Re-bases stored counts when scale_ underflows toward denormals.
  void RenormalizeIfNeeded();

  std::shared_ptr<const DirectedGraph> graph_;
  OnlineTrainerOptions options_;

  /// Attributed state: effective count = stored · scale_.
  std::vector<double> successes_;
  std::vector<double> failures_;
  double scale_ = 1.0;
  std::deque<AttributedEntry> attributed_window_;

  /// Unattributed state, touched sinks only.
  std::unordered_map<NodeId, SinkState> sinks_;
  std::deque<ObjectTrace> trace_window_;

  std::uint64_t attributed_absorbed_ = 0;
  std::uint64_t traces_absorbed_ = 0;

  obs::Counter* metric_records_;
  obs::Counter* metric_evicted_;
  obs::Gauge* metric_window_;
};

}  // namespace infoflow::stream
