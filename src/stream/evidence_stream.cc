#include "stream/evidence_stream.h"

#include <cerrno>
#include <utility>

#include <poll.h>
#include <unistd.h>

#include "learn/evidence_io.h"
#include "util/json.h"
#include "util/string_util.h"

namespace infoflow::stream {

const char* StreamFormatName(StreamFormat format) {
  switch (format) {
    case StreamFormat::kAuto: return "auto";
    case StreamFormat::kAttributed: return "attributed";
    case StreamFormat::kTraces: return "traces";
  }
  return "unknown";
}

Result<StreamFormat> ParseStreamFormat(const std::string& name) {
  if (name == "auto") return StreamFormat::kAuto;
  if (name == "attributed") return StreamFormat::kAttributed;
  if (name == "traces") return StreamFormat::kTraces;
  return Status::InvalidArgument("unknown stream format '", name,
                                 "' (expected auto | attributed | traces)");
}

const char* QueueOverflowPolicyName(QueueOverflowPolicy policy) {
  switch (policy) {
    case QueueOverflowPolicy::kPark: return "park";
    case QueueOverflowPolicy::kDropNewest: return "drop-newest";
    case QueueOverflowPolicy::kDropOldest: return "drop-oldest";
  }
  return "unknown";
}

Result<QueueOverflowPolicy> ParseQueueOverflowPolicy(const std::string& name) {
  if (name == "park") return QueueOverflowPolicy::kPark;
  if (name == "drop-newest") return QueueOverflowPolicy::kDropNewest;
  if (name == "drop-oldest") return QueueOverflowPolicy::kDropOldest;
  return Status::InvalidArgument(
      "unknown queue policy '", name,
      "' (expected park | drop-newest | drop-oldest)");
}

namespace {

Result<EvidenceRecord> ParseNativeLine(const std::string& line,
                                       const DirectedGraph& graph,
                                       StreamFormat format) {
  const bool attributed =
      format == StreamFormat::kAttributed ||
      (format == StreamFormat::kAuto && line.find('|') != std::string::npos);
  if (attributed) {
    auto object = ParseAttributedObjectLine(line, graph);
    if (!object.ok()) return object.status();
    return EvidenceRecord(std::move(*object));
  }
  auto trace = ParseTraceLine(line);
  if (!trace.ok()) return trace.status();
  return EvidenceRecord(std::move(*trace));
}

}  // namespace

Result<EvidenceRecord> ParseEvidenceLine(const std::string& line,
                                         const DirectedGraph& graph,
                                         StreamFormat format) {
  const std::string trimmed(Trim(line));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty evidence line");
  }
  if (trimmed.front() != '{') {
    return ParseNativeLine(trimmed, graph, format);
  }
  auto json = ParseJson(trimmed);
  if (!json.ok()) return json.status();
  if (const JsonValue* object = json->Find("attributed")) {
    if (!object->is_string()) {
      return Status::InvalidArgument(
          "'attributed' must be a native record string");
    }
    return ParseNativeLine(object->AsString(), graph,
                           StreamFormat::kAttributed);
  }
  if (const JsonValue* trace = json->Find("trace")) {
    if (!trace->is_string()) {
      return Status::InvalidArgument("'trace' must be a native record string");
    }
    return ParseNativeLine(trace->AsString(), graph, StreamFormat::kTraces);
  }
  return Status::InvalidArgument(
      "evidence envelope needs an 'attributed' or 'trace' member");
}

EvidenceQueue::EvidenceQueue(std::size_t capacity, QueueOverflowPolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy),
      metric_depth_(&obs::GetGauge("stream.queue.depth")),
      metric_dropped_(&obs::GetCounter("stream.queue.dropped_total")),
      metric_parked_(&obs::GetCounter("stream.queue.parked_total")) {}

bool EvidenceQueue::Push(EvidenceRecord record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_ && !closed_) {
    switch (policy_) {
      case QueueOverflowPolicy::kPark:
        metric_parked_->Increment();
        not_full_.wait(lock, [this] {
          return records_.size() < capacity_ || closed_;
        });
        break;
      case QueueOverflowPolicy::kDropNewest:
        ++dropped_;
        metric_dropped_->Increment();
        return false;
      case QueueOverflowPolicy::kDropOldest:
        records_.pop_front();
        ++dropped_;
        metric_dropped_->Increment();
        break;
    }
  }
  if (closed_) return false;
  records_.push_back(std::move(record));
  metric_depth_->Set(static_cast<double>(records_.size()));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool EvidenceQueue::Pop(EvidenceRecord& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return !records_.empty() || closed_; });
  if (records_.empty()) return false;  // closed and drained
  out = std::move(records_.front());
  records_.pop_front();
  metric_depth_->Set(static_cast<double>(records_.size()));
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void EvidenceQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t EvidenceQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

EvidenceStream::EvidenceStream(int fd, StreamFormat format,
                               std::shared_ptr<const DirectedGraph> graph,
                               std::shared_ptr<EvidenceQueue> queue)
    : fd_(fd),
      format_(format),
      graph_(std::move(graph)),
      queue_(std::move(queue)),
      thread_([this] { Run(); }) {}

EvidenceStream::~EvidenceStream() { Stop(); }

void EvidenceStream::Stop() {
  stopping_.store(true);
  queue_->Close();  // unparks a blocked Push
  if (thread_.joinable()) thread_.join();
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

std::uint64_t EvidenceStream::records_read() const {
  return records_read_.load();
}

std::uint64_t EvidenceStream::parse_errors() const {
  return parse_errors_.load();
}

void EvidenceStream::Run() {
  obs::Counter& parse_errors =
      obs::GetCounter("stream.read.parse_errors_total");
  obs::Counter& lines = obs::GetCounter("stream.read.lines_total");
  std::string buffer;
  char chunk[65536];
  while (!stopping_.load()) {
    // Poll with a short timeout so Stop() interrupts a quiet feed promptly
    // (a blocking read on an idle FIFO would pin the thread).
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, 50);
    if (ready == 0) continue;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t got = read(fd_, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      break;
    }
    if (got == 0) break;  // EOF: regular file drained / last FIFO writer left
    buffer.append(chunk, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         start = nl + 1, nl = buffer.find('\n', start)) {
      const std::string line(Trim(buffer.substr(start, nl - start)));
      if (line.empty()) continue;
      lines.Increment();
      auto record = ParseEvidenceLine(line, *graph_, format_);
      if (!record.ok()) {
        parse_errors.Increment();
        parse_errors_.fetch_add(1);
        continue;
      }
      if (queue_->Push(std::move(*record))) records_read_.fetch_add(1);
      if (stopping_.load()) break;
    }
    buffer.erase(0, start);
  }
  // A final unterminated line still counts as a record.
  const std::string line(Trim(buffer));
  if (!line.empty() && !stopping_.load()) {
    lines.Increment();
    auto record = ParseEvidenceLine(line, *graph_, format_);
    if (record.ok()) {
      if (queue_->Push(std::move(*record))) records_read_.fetch_add(1);
    } else {
      parse_errors.Increment();
      parse_errors_.fetch_add(1);
    }
  }
  queue_->Close();
}

}  // namespace infoflow::stream
