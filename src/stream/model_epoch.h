/// \file model_epoch.h
/// \brief RCU-style immutable model publication for the streaming path.
///
/// The serve daemon's readers (query engines, bank rebuilds) must see a
/// *consistent* model while the OnlineTrainer keeps absorbing records.
/// Copying the model per reader is wasteful; locking it per edge is worse.
/// The discipline that already works for SampleBank generations applies
/// unchanged: publish an immutable snapshot behind a shared_ptr and swap
/// the pointer under a mutex. Readers holding an old epoch are never
/// invalidated; the old model is freed when its last reader drops it.
///
/// Each epoch carries a monotonic id and the per-edge max-|Δp| drift
/// against the previously published epoch — the statistic the server's
/// drift-triggered bank refresh thresholds on. Metrics: `stream.epoch.id`,
/// `stream.epoch.drift`, `stream.epoch.age_s`, `stream.epoch.
/// publishes_total`, `stream.epoch.swap_ms`.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/icm.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace infoflow::stream {

/// \brief Per-edge max-|Δp| between two models over the same graph
/// (aborts on topology mismatch — programming error).
double MaxAbsDrift(const PointIcm& a, const PointIcm& b);

/// \brief One immutable published model snapshot.
struct ModelEpoch {
  /// Monotonic epoch id (1 for the initial publish, +1 per Publish).
  std::uint64_t id = 0;
  /// The edge-probability model of this epoch.
  PointIcm model;
  /// max_e |p_e − p'_e| against the previous epoch (0 for the first).
  double drift = 0.0;

  ModelEpoch(std::uint64_t id_in, PointIcm model_in, double drift_in)
      : id(id_in), model(std::move(model_in)), drift(drift_in) {}
};

/// \brief Owner of the current epoch pointer.
///
/// Thread-safety: all methods are safe from any thread. `Publish()` runs
/// its prev-read, drift computation, id mint, and pointer swap in one
/// critical section, so concurrent publishers get distinct, strictly
/// increasing epoch ids, each diffed against its true predecessor. Note
/// that serializing *publication* cannot order the model *fits* that feed
/// it — callers that fit then publish (StreamIngestor) hold their own
/// lock across both steps so epoch order matches fit order.
class EpochPublisher {
 public:
  /// Publishes the initial model as epoch 1.
  explicit EpochPublisher(PointIcm initial);

  /// The current epoch; never null.
  std::shared_ptr<const ModelEpoch> Current() const;

  /// \brief Computes drift against the current epoch, then atomically
  /// publishes `next` as epoch id+1. Returns the new epoch.
  std::shared_ptr<const ModelEpoch> Publish(PointIcm next);

  /// Seconds since the current epoch was published.
  double AgeSeconds() const;

 private:
  /// Guards current_/age_; unique_ptr keeps the publisher movable.
  std::unique_ptr<std::mutex> mutex_;
  std::shared_ptr<const ModelEpoch> current_;
  WallTimer age_;

  obs::Gauge* metric_id_;
  obs::Gauge* metric_drift_;
  obs::Gauge* metric_age_s_;
  obs::Counter* metric_publishes_;
  obs::Histogram* metric_swap_ms_;
};

}  // namespace infoflow::stream
