#include "stream/ingestor.h"

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/multi_chain.h"
#include "util/timer.h"

namespace infoflow::stream {

Status IngestorOptions::Validate() const {
  IF_RETURN_NOT_OK(trainer.Validate());
  return Status::OK();
}

StreamIngestor::StreamIngestor(std::shared_ptr<const DirectedGraph> graph,
                               PointIcm initial, IngestorOptions options)
    : graph_(std::move(graph)),
      options_(std::move(options)),
      trainer_(graph_, options_.trainer),
      publisher_(std::move(initial)),
      metric_absorbed_(&obs::GetCounter("stream.ingest.records_total")),
      metric_rejected_(&obs::GetCounter("stream.ingest.rejected_total")),
      metric_events_per_s_(&obs::GetGauge("stream.ingest.events_per_s")) {
  if (options_.epoch_every == 0) options_.epoch_every = 1;
  options_.Validate().CheckOK();
}

StreamIngestor::~StreamIngestor() { StopFeed(); }

Status StreamIngestor::AbsorbRecord(const EvidenceRecord& record) {
  bool due = false;
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    const Status status = trainer_.Absorb(record);
    if (!status.ok()) {
      ++rejected_;
      metric_rejected_->Increment();
      return status;
    }
    ++absorbed_;
    metric_absorbed_->Increment();
    due = ++since_publish_ >= options_.epoch_every;
  }
  if (due) {
    // A publish failure (e.g. the estimator cannot fit yet) is not an
    // ingest failure: the record is absorbed either way.
    (void)Publish();
  }
  return Status::OK();
}

Result<IngestAck> StreamIngestor::IngestLine(const std::string& line) {
  auto record = ParseEvidenceLine(line, *graph_, options_.format);
  if (!record.ok()) {
    {
      std::lock_guard<std::mutex> lock(trainer_mutex_);
      ++rejected_;
    }
    metric_rejected_->Increment();
    return record.status();
  }
  IF_RETURN_NOT_OK(AbsorbRecord(*record));
  IngestAck ack;
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    ack.absorbed_total = absorbed_;
  }
  ack.epoch = publisher_.Current()->id;
  return ack;
}

Result<std::shared_ptr<const ModelEpoch>> StreamIngestor::Publish() {
  // publish_mutex_ spans the fit *and* the publisher swap: Publish() is
  // reachable concurrently from the feed consumer and every serve
  // connection, and without this lock a thread that fit an older trainer
  // state could swap its epoch in after a newer one, regressing the
  // current model. trainer_mutex_ alone cannot give that guarantee — it
  // is released between fit and swap so ingestion never blocks on the
  // publish bookkeeping. Lock order: publish_mutex_ → trainer_mutex_.
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  std::optional<PointIcm> model;
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    Rng rng(MultiChainSampler::DeriveChainSeed(options_.seed, publish_seq_));
    auto fitted = trainer_.CurrentPointModel(rng);
    if (!fitted.ok()) return fitted.status();
    ++publish_seq_;
    const double elapsed = rate_timer_.Seconds();
    if (elapsed > 0.0) {
      metric_events_per_s_->Set(static_cast<double>(since_publish_) / elapsed);
    }
    since_publish_ = 0;
    rate_timer_.Restart();
    model.emplace(std::move(*fitted));
  }
  std::shared_ptr<const ModelEpoch> epoch =
      publisher_.Publish(std::move(*model));
  std::function<void(std::shared_ptr<const ModelEpoch>)> callback;
  {
    std::lock_guard<std::mutex> lock(callback_mutex_);
    callback = callback_;
  }
  if (callback) callback(epoch);
  return epoch;
}

Result<std::shared_ptr<const ModelEpoch>> StreamIngestor::PublishNow() {
  return Publish();
}

Status StreamIngestor::StartFeed(const std::string& path) {
  if (feed_ != nullptr) {
    return Status::FailedPrecondition("a feed is already attached");
  }
  struct stat st{};
  const bool is_fifo = stat(path.c_str(), &st) == 0 && S_ISFIFO(st.st_mode);
  // A FIFO is opened read-write: with this process holding a write end the
  // reader never sees EOF when an external writer closes, so the feed
  // survives `cat file > fifo` being run repeatedly.
  const int fd = open(path.c_str(), is_fifo ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open feed '", path,
                            "': ", std::strerror(errno));
  }
  {
    // queue_ is also snapshotted by queue_depth() from serve threads.
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    queue_ = std::make_shared<EvidenceQueue>(options_.queue_capacity,
                                             options_.queue_policy);
  }
  feed_ = std::make_unique<EvidenceStream>(fd, options_.format, graph_,
                                           queue_);
  consumer_ = std::thread([this] { ConsumeLoop(); });
  return Status::OK();
}

void StreamIngestor::ConsumeLoop() {
  EvidenceRecord record;
  while (queue_->Pop(record)) {
    // Feed-path validation failures are already counted; keep draining.
    (void)AbsorbRecord(record);
  }
  // Flush on drain: a finite feed (regular file, or the writer side of a
  // FIFO closing after Stop) publishes whatever arrived since the last
  // cadence tick.
  bool pending;
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    pending = since_publish_ > 0;
  }
  if (pending) (void)Publish();
}

void StreamIngestor::StopFeed() {
  if (feed_ == nullptr) return;
  feed_->Stop();  // closes the queue; the consumer drains and exits
  if (consumer_.joinable()) consumer_.join();
  feed_.reset();
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    queue_.reset();
  }
}

std::shared_ptr<const ModelEpoch> StreamIngestor::CurrentEpoch() const {
  return publisher_.Current();
}

void StreamIngestor::SetEpochCallback(
    std::function<void(std::shared_ptr<const ModelEpoch>)> callback) {
  std::lock_guard<std::mutex> lock(callback_mutex_);
  callback_ = std::move(callback);
}

std::uint64_t StreamIngestor::absorbed() const {
  std::lock_guard<std::mutex> lock(trainer_mutex_);
  return absorbed_;
}

std::uint64_t StreamIngestor::rejected() const {
  std::lock_guard<std::mutex> lock(trainer_mutex_);
  return rejected_;
}

std::size_t StreamIngestor::queue_depth() const {
  std::shared_ptr<EvidenceQueue> queue;
  {
    std::lock_guard<std::mutex> lock(trainer_mutex_);
    queue = queue_;
  }
  return queue == nullptr ? 0 : queue->Depth();
}

}  // namespace infoflow::stream
