/// \file evidence_stream.h
/// \brief Incremental evidence ingestion: line-oriented record parsing and
/// a bounded, lock-based hand-off queue between a reader and the trainer.
///
/// The batch pipeline reads a whole evidence file, validates it, and trains
/// once. A production daemon instead sees records *arrive* — as NDJSON
/// envelopes on the serve connection or as raw evidence lines dripping into
/// a side-channel file/FIFO — and must absorb them without stalling query
/// traffic. This file supplies the two ingredients upstream of the
/// OnlineTrainer:
///
///  - `ParseEvidenceLine` — one wire line → one EvidenceRecord. Accepts the
///    native delimited grammars of learn/evidence_io ("src|nodes|edges"
///    attributed objects, "node:time ..." traces) and a one-object NDJSON
///    envelope ({"attributed":"0|0 1|0>1"} / {"trace":"0:0 2:1.5"}) parsed
///    with util/json.h. Field-level duplicates are deduplicated by the
///    shared evidence_io parsers (surfaced as the `parse.duplicates`
///    metric) — a streaming source that double-delivers a record's node
///    list cannot double-count Beta updates.
///
///  - `EvidenceQueue` — a bounded mutex+condvar queue with an explicit
///    overflow policy: `kPark` blocks the producer (backpressure the
///    reader thread propagates to the feed), `kDropNewest` / `kDropOldest`
///    shed load and count what was shed (`stream.queue.dropped_total`).
///
/// `EvidenceStream` pumps a POSIX fd through the parser into the queue on
/// a dedicated thread — the reader half of `infoflow serve --ingest-from`.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>

#include "graph/graph.h"
#include "learn/attributed.h"
#include "learn/unattributed.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace infoflow::stream {

/// \brief One streamed evidence record: an attributed object or a trace.
using EvidenceRecord = std::variant<AttributedObject, ObjectTrace>;

/// \brief How bare (non-JSON) lines are interpreted.
enum class StreamFormat {
  /// Sniff per line: a '|' means an attributed object, otherwise a trace.
  /// (Every attributed line has its two field separators; no trace token
  /// contains '|'.)
  kAuto,
  kAttributed,
  kTraces,
};

/// The canonical lower-case name ("auto" / "attributed" / "traces").
const char* StreamFormatName(StreamFormat format);

/// Parses the canonical name; InvalidArgument on anything else.
Result<StreamFormat> ParseStreamFormat(const std::string& name);

/// \brief Parses one wire line into a record. Lines opening with '{' are
/// NDJSON envelopes ({"attributed": "<native line>"} or {"trace": ...});
/// anything else is a native evidence line read per `format`. Empty and
/// whitespace-only lines are InvalidArgument (callers skip blanks).
Result<EvidenceRecord> ParseEvidenceLine(const std::string& line,
                                         const DirectedGraph& graph,
                                         StreamFormat format);

/// \brief What a full queue does with the next push.
enum class QueueOverflowPolicy {
  /// Park the producer until a consumer makes room — backpressure.
  kPark,
  /// Reject the incoming record (producer keeps going, record is lost).
  kDropNewest,
  /// Evict the oldest queued record to admit the new one.
  kDropOldest,
};

/// The canonical name ("park" / "drop-newest" / "drop-oldest").
const char* QueueOverflowPolicyName(QueueOverflowPolicy policy);

/// Parses the canonical name; InvalidArgument on anything else.
Result<QueueOverflowPolicy> ParseQueueOverflowPolicy(const std::string& name);

/// \brief Bounded multi-producer/multi-consumer record queue.
///
/// All operations are mutex-guarded (the records are heap-heavy variants;
/// a lock-free design would buy nothing over the parse cost). Exported
/// gauges/counters: `stream.queue.depth`, `stream.queue.dropped_total`,
/// `stream.queue.parked_total`.
class EvidenceQueue {
 public:
  EvidenceQueue(std::size_t capacity, QueueOverflowPolicy policy);

  /// \brief Enqueues one record, applying the overflow policy when full.
  /// Returns true when the record was admitted, false when it was dropped
  /// (kDropNewest) or the queue is closed. kPark blocks until space or
  /// Close().
  bool Push(EvidenceRecord record);

  /// \brief Dequeues into `out`; blocks until a record arrives or the
  /// queue is closed *and* drained. False only on closed-and-empty.
  bool Pop(EvidenceRecord& out);

  /// \brief Marks the stream complete: parked producers give up, poppers
  /// drain the backlog then get false. Idempotent.
  void Close();

  std::size_t capacity() const { return capacity_; }
  QueueOverflowPolicy policy() const { return policy_; }

  /// Current depth (racy snapshot — monitoring only).
  std::size_t Depth() const;

  /// Records dropped by the overflow policy so far.
  std::uint64_t Dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  const QueueOverflowPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<EvidenceRecord> records_;
  bool closed_ = false;
  /// Atomic so Dropped() can read without mutex_ while Push increments
  /// under it.
  std::atomic<std::uint64_t> dropped_{0};

  obs::Gauge* metric_depth_;
  obs::Counter* metric_dropped_;
  obs::Counter* metric_parked_;
};

/// \brief Reader pump: a thread that tails a POSIX fd line by line,
/// parses each line with ParseEvidenceLine, and pushes the records into a
/// queue. Unparseable lines are counted (`stream.read.parse_errors_total`)
/// and skipped — one bad record must not kill a live feed. The queue is
/// closed at EOF (for a FIFO: when the last writer closes) or Stop().
class EvidenceStream {
 public:
  /// \brief Starts the reader thread. `fd` is owned by the stream and
  /// closed on Stop/destruction. `queue` and `graph` must outlive it.
  EvidenceStream(int fd, StreamFormat format,
                 std::shared_ptr<const DirectedGraph> graph,
                 std::shared_ptr<EvidenceQueue> queue);
  ~EvidenceStream();

  EvidenceStream(const EvidenceStream&) = delete;
  EvidenceStream& operator=(const EvidenceStream&) = delete;

  /// Interrupts the pump and joins the thread. Idempotent.
  void Stop();

  /// Lines successfully parsed into records so far.
  std::uint64_t records_read() const;

  /// Lines that failed to parse so far.
  std::uint64_t parse_errors() const;

 private:
  void Run();

  int fd_;
  StreamFormat format_;
  std::shared_ptr<const DirectedGraph> graph_;
  std::shared_ptr<EvidenceQueue> queue_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> records_read_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::thread thread_;
};

}  // namespace infoflow::stream
