#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace infoflow {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return std::string(buf);
}

bool IsTagChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace infoflow
