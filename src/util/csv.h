/// \file csv.h
/// \brief Minimal CSV reading/writing for experiment result plumbing.
///
/// This is deliberately small: comma separator, optional double-quote
/// quoting with "" escapes, no embedded newlines inside quoted fields. It is
/// what the bench harnesses use to dump figure series (`--csv <dir>`), and
/// what tests use to round-trip them.

#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace infoflow {

/// \brief A parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or Status::NotFound.
  Result<std::size_t> ColumnIndex(const std::string& name) const;
};

/// \brief Incremental CSV writer.
///
/// \code
///   CsvWriter w({"bin", "mean", "lo", "hi"});
///   w.AppendRow({"0", "0.013", "0.002", "0.031"});
///   w.WriteFile("fig1.csv").CheckOK();
/// \endcode
class CsvWriter {
 public:
  /// Creates a writer with the given header.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void AppendRow(std::vector<std::string> row);

  /// Convenience: appends a row of doubles formatted with FormatDouble.
  void AppendNumericRow(const std::vector<double>& row);

  /// Serializes the table (header + rows) with CRLF-free '\n' endings.
  std::string ToString() const;

  /// Writes ToString() to `path`.
  Status WriteFile(const std::string& path) const;

  /// Number of appended rows.
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (first row is the header). Rows whose width differs from
/// the header produce a ParseError.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path);

/// Quotes a single CSV field if it contains a comma, quote or newline.
std::string CsvQuote(const std::string& field);

}  // namespace infoflow
