/// \file timer.h
/// \brief Wall-clock stopwatch used by the figure benches (Fig. 6, §IV-C
/// timing claims).

#pragma once

#include <chrono>

namespace infoflow {

/// \brief A monotonic stopwatch. Starts running on construction.
///
/// Two usage modes:
///  - one-shot: construct (or Restart()), read Seconds()/Millis();
///  - accumulating: call Lap() at each segment boundary — it banks the
///    segment, restarts the running segment, and returns the segment's
///    seconds; TotalSeconds() reads banked laps plus the running segment.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now and discards any banked laps.
  void Restart() {
    start_ = Clock::now();
    banked_ = 0.0;
  }

  /// Seconds elapsed in the current segment (since construction, the last
  /// Restart(), or the last Lap()).
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed in the current segment.
  double Millis() const { return Seconds() * 1e3; }

  /// \brief Banks the current segment and starts a new one; returns the
  /// banked segment's seconds. The stop/resume primitive: time spans you
  /// want *excluded* land in laps you ignore.
  double Lap() {
    const Clock::time_point now = Clock::now();
    const double lap = std::chrono::duration<double>(now - start_).count();
    banked_ += lap;
    start_ = now;
    return lap;
  }

  /// Seconds across every banked lap plus the running segment — total time
  /// since construction / Restart(), unaffected by intervening Lap() calls.
  double TotalSeconds() const { return banked_ + Seconds(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double banked_ = 0.0;
};

}  // namespace infoflow
