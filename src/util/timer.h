/// \file timer.h
/// \brief Wall-clock stopwatch used by the figure benches (Fig. 6, §IV-C
/// timing claims).

#pragma once

#include <chrono>

namespace infoflow {

/// \brief A monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace infoflow
