/// \file json.h
/// \brief A minimal JSON value type, parser, and writer.
///
/// The serve daemon speaks newline-delimited JSON (one request or response
/// object per line), and the observability snapshots already *emit* JSON;
/// this adds the read side without an external dependency. The dialect is
/// standard RFC 8259 minus two deliberate simplifications: numbers are
/// always doubles (the protocol's node ids and counts fit a double's 53-bit
/// integer range comfortably), and \uXXXX escapes outside ASCII are passed
/// through as their raw escape text rather than decoded to UTF-8 (no
/// protocol field carries non-ASCII content).

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace infoflow {

/// \brief One JSON value: null, bool, number, string, array, or object.
///
/// Objects keep their members in a std::map, so Dump() output is
/// key-sorted and deterministic — handy for golden tests and diffable logs.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  /// Constructs null.
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  JsonValue(int value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value)  // NOLINT
      : kind_(Kind::kString), string_(value) {}
  JsonValue(Array value)  // NOLINT
      : kind_(Kind::kArray), array_(std::move(value)) {}
  JsonValue(Object value)  // NOLINT
      : kind_(Kind::kObject), object_(std::move(value)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; aborting on kind mismatch (programming error).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  /// Mutable object/array access for builder-style construction.
  Array& MutableArray();
  Object& MutableObject();

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// \brief Serializes compactly (no whitespace), with object keys in map
  /// order and doubles in shortest round-trip form: integers up to 2^53 in
  /// magnitude print without a fractional part, everything else with the
  /// fewest significant digits (at most 17) that parse back to the exact
  /// same double — snapshots of drift statistics and Beta counts survive
  /// Dump → ParseJson bit-exactly.
  std::string Dump() const;

 private:
  void DumpTo(std::string& out) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// \brief Parses one JSON document. Trailing non-whitespace after the value
/// is an error, as are unterminated strings/containers, so a truncated
/// protocol line fails loudly instead of yielding a partial request.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace infoflow
