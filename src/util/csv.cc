#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

Result<std::size_t> CsvTable::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return Status::NotFound("no CSV column named '", name, "'");
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  IF_CHECK(!header_.empty()) << "CSV header must have at least one column";
}

void CsvWriter::AppendRow(std::vector<std::string> row) {
  IF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::AppendNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(FormatDouble(v, 9));
  AppendRow(std::move(fields));
}

std::string CsvQuote(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvQuote(row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '", path, "' for writing");
  out << ToString();
  if (!out) return Status::IOError("write failed for '", path, "'");
  return Status::OK();
}

namespace {

// Parses one CSV line into fields, honoring double-quote quoting.
Result<std::vector<std::string>> ParseLine(const std::string& line,
                                           std::size_t line_no) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote on CSV line ", line_no);
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text) {
  CsvTable table;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = ParseLine(line, line_no);
    if (!fields.ok()) return fields.status();
    if (table.header.empty()) {
      table.header = std::move(fields).ValueOrDie();
      continue;
    }
    auto row = std::move(fields).ValueOrDie();
    if (row.size() != table.header.size()) {
      return Status::ParseError("CSV line ", line_no, " has ", row.size(),
                                " fields, expected ", table.header.size());
    }
    table.rows.push_back(std::move(row));
  }
  if (table.header.empty()) {
    return Status::ParseError("empty CSV input");
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '", path, "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace infoflow
