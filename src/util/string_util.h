/// \file string_util.h
/// \brief Small string helpers used across the library (split/join/trim,
/// prefix tests, number formatting). No locale dependence.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace infoflow {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True when `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view text);

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("0.25", "1", "3.14e-05").
std::string FormatDouble(double value, int digits = 6);

/// True when `c` is alphanumeric or '_': the character class Twitter allows
/// in hashtags and usernames.
bool IsTagChar(char c);

}  // namespace infoflow
