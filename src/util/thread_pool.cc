#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace infoflow {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  IF_CHECK(task != nullptr) << "null task";
  {
    std::unique_lock<std::mutex> lock(mutex_);
    IF_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.size() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, count);
    pool.Submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace infoflow
