#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace infoflow {

namespace {

/// Shared-pool metrics. Task granularity is coarse (ParallelFor chunks),
/// so per-task clock reads and histogram records are noise; all of it still
/// compiles out under INFOFLOW_NO_METRICS via the call-site guards.
std::uint64_t TaskClockNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<double> TaskLatencyBounds() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10};
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge = obs::GetGauge("threadpool.queue_depth");
  return gauge;
}

obs::Counter& TasksCounter() {
  static obs::Counter& counter = obs::GetCounter("threadpool.tasks");
  return counter;
}

obs::Histogram& WaitHistogram() {
  static obs::Histogram& hist =
      obs::GetHistogram("threadpool.task_wait_ns", TaskLatencyBounds());
  return hist;
}

obs::Histogram& RunHistogram() {
  static obs::Histogram& hist =
      obs::GetHistogram("threadpool.task_run_ns", TaskLatencyBounds());
  return hist;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  IF_CHECK(task != nullptr) << "null task";
  QueuedTask queued{std::move(task), 0};
  if constexpr (obs::MetricsEnabled()) queued.enqueue_ns = TaskClockNs();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    IF_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(queued));
    if constexpr (obs::MetricsEnabled()) {
      QueueDepthGauge().Set(static_cast<double>(queue_.size()));
    }
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
      if constexpr (obs::MetricsEnabled()) {
        QueueDepthGauge().Set(static_cast<double>(queue_.size()));
      }
    }
    std::uint64_t run_begin_ns = 0;
    if constexpr (obs::MetricsEnabled()) {
      run_begin_ns = TaskClockNs();
      WaitHistogram().Record(
          static_cast<double>(run_begin_ns - task.enqueue_ns));
    }
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
    if constexpr (obs::MetricsEnabled()) {
      RunHistogram().Record(static_cast<double>(TaskClockNs() - run_begin_ns));
      TasksCounter().Increment();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.size() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, count);
    pool.Submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.Wait();
}

}  // namespace infoflow
