/// \file thread_pool.h
/// \brief A minimal fixed-size thread pool and a deterministic ParallelFor.
///
/// The evaluation workloads (bucket experiments, RMSE sweeps, nested MH)
/// are embarrassingly parallel across trials. The pattern the library
/// supports: derive an independent Rng per index (e.g. Rng(seed ^ index)
/// or parent.Split() upfront), then run the trial body under ParallelFor —
/// results are identical to the serial loop regardless of scheduling.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace infoflow {

/// \brief Fixed worker pool; tasks are void() callables.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; defaults to the hardware count).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished. If any task
  /// threw, rethrows the *first* captured exception here (subsequent task
  /// exceptions from the same batch are dropped) and clears it, leaving the
  /// pool reusable. An exception never tears down a worker: the remaining
  /// tasks still run to completion before Wait() returns or throws.
  void Wait();

  /// Number of workers.
  std::size_t size() const { return workers_.size(); }

 private:
  /// A queued task plus its enqueue timestamp (ns since the steady-clock
  /// epoch; 0 when metrics are compiled out), so the worker can split time
  /// into queue-wait vs run for the observability histograms.
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last Wait(); the destructor
  /// discards it (it cannot throw).
  std::exception_ptr first_error_;
};

/// \brief Runs `body(i)` for i in [0, count) across `pool`'s workers,
/// blocking until all indices complete. Indices are batched into
/// contiguous chunks to amortize queue traffic. If `body` throws, the first
/// exception propagates out of ParallelFor once every chunk has finished
/// (later indices in the throwing chunk are skipped; other chunks run).
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace infoflow
