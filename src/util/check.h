/// \file check.h
/// \brief Invariant-checking macros for programming errors.
///
/// IF_CHECK* always fire; IF_DCHECK* compile away in NDEBUG builds. These are
/// for *bugs* (broken invariants, impossible states) — recoverable data
/// errors should return a Status instead (see status.h).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace infoflow::internal {

/// Prints the failure banner and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& extra) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

/// Helper that lets the macros stream extra context:
///   IF_CHECK(x > 0) << "x was " << x;   (via CheckStream)
class CheckStream {
 public:
  CheckStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckStream() { CheckFailed(expr_, file_, line_, oss_.str()); }
  template <typename T>
  CheckStream& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream oss_;
};

}  // namespace infoflow::internal

/// Aborts with a diagnostic when `cond` is false. Additional context may be
/// streamed: `IF_CHECK(i < n) << "i=" << i;`
#define IF_CHECK(cond)                                             \
  if (cond) {                                                      \
  } else /* NOLINT */                                              \
    ::infoflow::internal::CheckStream(#cond, __FILE__, __LINE__)

/// Binary comparison checks that show both operand values on failure.
#define IF_CHECK_OP(op, a, b)                                       \
  IF_CHECK((a)op(b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define IF_CHECK_EQ(a, b) IF_CHECK_OP(==, a, b)
#define IF_CHECK_NE(a, b) IF_CHECK_OP(!=, a, b)
#define IF_CHECK_LT(a, b) IF_CHECK_OP(<, a, b)
#define IF_CHECK_LE(a, b) IF_CHECK_OP(<=, a, b)
#define IF_CHECK_GT(a, b) IF_CHECK_OP(>, a, b)
#define IF_CHECK_GE(a, b) IF_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define IF_DCHECK(cond) \
  if (true) {           \
  } else /* NOLINT */   \
    ::infoflow::internal::CheckStream(#cond, __FILE__, __LINE__)
#else
#define IF_DCHECK(cond) IF_CHECK(cond)
#endif
