#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace infoflow {

bool JsonValue::AsBool() const {
  IF_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double JsonValue::AsNumber() const {
  IF_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

const std::string& JsonValue::AsString() const {
  IF_CHECK(is_string()) << "JSON value is not a string";
  return string_;
}

const JsonValue::Array& JsonValue::AsArray() const {
  IF_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

const JsonValue::Object& JsonValue::AsObject() const {
  IF_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

JsonValue::Array& JsonValue::MutableArray() {
  IF_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

JsonValue::Object& JsonValue::MutableObject() {
  IF_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double v) {
  // Integers in the exactly-representable range (|v| <= 2^53) print without
  // a fraction — accumulated Beta counts and row totals stay plain integers
  // however large they grow; everything else gets enough digits (up to 17
  // significant) to round-trip through strtod exactly.
  constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) <= kMaxExactInteger) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN literal; null is the conventional stand-in.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char trial[32];
    std::snprintf(trial, sizeof(trial), "%.*g", precision, v);
    if (std::strtod(trial, nullptr) == v) {
      out += trial;
      return;
    }
  }
  out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: AppendNumber(out, number_); break;
    case Kind::kString: AppendEscaped(out, string_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].DumpTo(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        AppendEscaped(out, key);
        out.push_back(':');
        value.DumpTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return value;
  }

 private:
  /// Containers deeper than this reject — a malicious request line cannot
  /// blow the parser's stack.
  static constexpr int kMaxDepth = 64;

  Status Error(const char* what) const {
    return Status::ParseError("JSON: ", what, " at offset ", pos_);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': return ParseString();
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("bad literal");
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object.insert_or_assign(key->AsString(),
                              std::move(value).ValueOrDie());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.push_back(std::move(value).ValueOrDie());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Error("bad \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (std::tolower(h) - 'a' + 10));
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              // Pass non-ASCII escapes through verbatim (see file comment).
              out += text_.substr(pos_ - 2, 6);
            }
            pos_ += 4;
            break;
          }
          default: return Error("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      return Error("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace infoflow
