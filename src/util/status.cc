#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace infoflow {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace infoflow
