/// \file status.h
/// \brief Lightweight Status / Result<T> error-propagation types.
///
/// The library follows the Arrow/Google convention of returning a `Status`
/// (or a `Result<T>`, which is a Status-or-value) from operations that can
/// fail for *data* reasons — malformed input, out-of-range parameters coming
/// from a caller, I/O errors. Programming errors (broken invariants) use the
/// IF_CHECK macros in check.h instead and abort.

#pragma once

#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace infoflow {

/// \brief Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kParseError,
  kDeadlineExceeded,
  kUnimplemented,
  kInternal,
};

/// \brief Returns the canonical lower-case name of a status code
/// (e.g. "invalid-argument").
const char* StatusCodeName(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a human message.
///
/// `Status` is cheap to copy in the OK case (empty message) and supports the
/// usual factory helpers:
/// \code
///   Status s = Status::InvalidArgument("probability out of [0,1]: ", p);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  /// \name Error factories
  /// Each concatenates its arguments (streamed) into the message.
  ///@{
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status OutOfRange(Args&&... args) {
    return Make(StatusCode::kOutOfRange, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotFound(Args&&... args) {
    return Make(StatusCode::kNotFound, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status AlreadyExists(Args&&... args) {
    return Make(StatusCode::kAlreadyExists, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status FailedPrecondition(Args&&... args) {
    return Make(StatusCode::kFailedPrecondition, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IOError(Args&&... args) {
    return Make(StatusCode::kIOError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ParseError(Args&&... args) {
    return Make(StatusCode::kParseError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unimplemented(Args&&... args) {
    return Make(StatusCode::kUnimplemented, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  ///@}

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure category (kOk on success).
  StatusCode code() const { return code_; }

  /// The human-readable message (empty on success).
  const std::string& message() const { return message_; }

  /// "OK" or "<code-name>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. Use at call sites
  /// where failure is a programming error.
  void CheckOK() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args);

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace internal {
/// Streams a pack of arguments into a string (implementation detail of the
/// Status factories).
template <typename... Args>
std::string StrCatImpl(Args&&... args) {
  std::string out;
  std::ostringstream* stream = nullptr;
  (void)stream;
  // Use an ostringstream for full generality (floats, enums with <<, ...).
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace internal

template <typename... Args>
Status Status::Make(StatusCode code, Args&&... args) {
  return Status(code, internal::StrCatImpl(std::forward<Args>(args)...));
}

/// \brief A value-or-Status, analogous to `arrow::Result<T>`.
///
/// \code
///   Result<Graph> r = Graph::FromEdgeList(edges);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Aborts if `status.ok()`,
  /// since an OK Result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True when a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Returns the value; aborts with the status message on error.
  const T& ValueOrDie() const& {
    status_.CheckOK();
    return *value_;
  }
  /// Move-out overload of ValueOrDie().
  T ValueOrDie() && {
    status_.CheckOK();
    return std::move(*value_);
  }
  /// Returns the value or `fallback` on error.
  T ValueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  /// Dereference-style accessors (must be ok()).
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Mutable access — stateful values (samplers, builders) need it.
  T& ValueOrDie() & {
    status_.CheckOK();
    return *value_;
  }
  T& operator*() & { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates an error Status from an expression, Arrow-style.
#define IF_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::infoflow::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace infoflow
