#include "learn/joint_bayes.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.h"
#include "util/check.h"

namespace infoflow {

Status JointBayesOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (proposal_sd <= 0.0 || proposal_sd > 1.0) {
    return Status::InvalidArgument("proposal_sd must be in (0,1], got ",
                                   proposal_sd);
  }
  return Status::OK();
}

double JointBayesResult::SampleCorrelation(std::size_t a,
                                           std::size_t b) const {
  IF_CHECK(!samples.empty())
      << "SampleCorrelation requires keep_samples=true";
  IF_CHECK(a < parents.size() && b < parents.size());
  RunningStats sa, sb;
  for (const auto& s : samples) {
    sa.Add(s[a]);
    sb.Add(s[b]);
  }
  double cov = 0.0;
  for (const auto& s : samples) {
    cov += (s[a] - sa.Mean()) * (s[b] - sb.Mean());
  }
  cov /= static_cast<double>(samples.size() - 1);
  const double denom = sa.StdDev() * sb.StdDev();
  return denom > 0.0 ? cov / denom : 0.0;
}

std::vector<BetaDist> UnambiguousPriors(const SinkSummary& summary) {
  std::vector<BetaDist> priors(summary.parents.size(), BetaDist::Uniform());
  for (const SummaryRow& row : summary.rows) {
    if (row.Cardinality() != 1) continue;
    for (std::size_t j = 0; j < row.mask.size(); ++j) {
      if (!row.mask[j]) continue;
      priors[j] = BetaDist(priors[j].alpha() + static_cast<double>(row.leaks),
                           priors[j].beta() +
                               static_cast<double>(row.count - row.leaks));
      break;
    }
  }
  return priors;
}

namespace {

constexpr double kEps = 1e-12;

/// Log Binomial likelihood of one row at influence probability p_J (the
/// combinatorial constant is dropped).
inline double RowLogLik(const SummaryRow& row, double p_joint) {
  const auto leaks = static_cast<double>(row.leaks);
  const auto silent = static_cast<double>(row.count - row.leaks);
  double ll = 0.0;
  if (leaks > 0.0) {
    if (p_joint <= 0.0) return -std::numeric_limits<double>::infinity();
    ll += leaks * std::log(p_joint);
  }
  if (silent > 0.0) {
    if (p_joint >= 1.0) return -std::numeric_limits<double>::infinity();
    ll += silent * std::log1p(-p_joint);
  }
  return ll;
}

/// p_J = 1 - Π_{j∈J} (1 - p_j).
inline double JointInfluence(const SummaryRow& row,
                             const std::vector<double>& p) {
  double survive = 1.0;
  for (std::size_t j = 0; j < row.mask.size(); ++j) {
    if (row.mask[j]) survive *= 1.0 - p[j];
  }
  return 1.0 - survive;
}

/// Reflects a proposal into [kEps, 1 - kEps].
inline double Reflect(double x) {
  // A couple of reflections suffice for any realistic step size.
  for (int i = 0; i < 64 && (x < 0.0 || x > 1.0); ++i) {
    if (x < 0.0) x = -x;
    if (x > 1.0) x = 2.0 - x;
  }
  return std::clamp(x, kEps, 1.0 - kEps);
}

}  // namespace

double JointBayesLogPosterior(const SinkSummary& summary,
                              const std::vector<BetaDist>& priors,
                              const std::vector<double>& p) {
  IF_CHECK_EQ(priors.size(), summary.parents.size());
  IF_CHECK_EQ(p.size(), summary.parents.size());
  double lp = 0.0;
  for (const SummaryRow& row : summary.rows) {
    lp += RowLogLik(row, JointInfluence(row, p));
  }
  for (std::size_t j = 0; j < p.size(); ++j) {
    lp += priors[j].LogPdf(p[j]);
  }
  return lp;
}

Result<JointBayesResult> FitJointBayes(const SinkSummary& summary,
                                       const JointBayesOptions& options,
                                       Rng& rng) {
  IF_RETURN_NOT_OK(options.Validate());
  const std::size_t k = summary.parents.size();
  if (k == 0) {
    return Status::FailedPrecondition("sink ", summary.sink,
                                      " has no incident parents to learn");
  }
  JointBayesResult result;
  result.sink = summary.sink;
  result.parents = summary.parents;
  result.parent_edges = summary.parent_edges;
  result.priors = UnambiguousPriors(summary);

  // Precompute, per parent, the rows whose characteristic contains it —
  // the only likelihood terms a component update touches.
  std::vector<std::vector<std::size_t>> rows_of(k);
  for (std::size_t r = 0; r < summary.rows.size(); ++r) {
    const SummaryRow& row = summary.rows[r];
    for (std::size_t j = 0; j < k; ++j) {
      if (row.mask[j]) rows_of[j].push_back(r);
    }
  }

  // Start at the prior means.
  std::vector<double> p(k);
  for (std::size_t j = 0; j < k; ++j) {
    p[j] = std::clamp(result.priors[j].Mean(), kEps, 1.0 - kEps);
  }

  double sd = options.proposal_sd;
  std::uint64_t proposals = 0, accepts = 0;
  std::uint64_t warm_proposals = 0, warm_accepts = 0;

  auto sweep = [&](bool warming) {
    for (std::size_t j = 0; j < k; ++j) {
      const double old_p = p[j];
      const double new_p = Reflect(old_p + rng.Normal(0.0, sd));
      // Delta log posterior: rows containing j plus j's prior.
      double delta = result.priors[j].LogPdf(new_p) -
                     result.priors[j].LogPdf(old_p);
      for (std::size_t r : rows_of[j]) {
        const SummaryRow& row = summary.rows[r];
        delta -= RowLogLik(row, JointInfluence(row, p));
        p[j] = new_p;
        delta += RowLogLik(row, JointInfluence(row, p));
        p[j] = old_p;
      }
      ++proposals;
      if (warming) ++warm_proposals;
      if (delta >= 0.0 || rng.NextDouble() < std::exp(delta)) {
        p[j] = new_p;
        ++accepts;
        if (warming) ++warm_accepts;
      }
    }
  };

  // Burn-in with optional step-size adaptation.
  for (std::size_t it = 0; it < options.burn_in; ++it) {
    sweep(/*warming=*/true);
    if (options.adapt && (it + 1) % 25 == 0 && warm_proposals > 0) {
      const double rate = static_cast<double>(warm_accepts) /
                          static_cast<double>(warm_proposals);
      sd = std::clamp(sd * std::exp(0.5 * (rate - 0.35)), 1e-3, 0.5);
      warm_proposals = warm_accepts = 0;
    }
  }
  proposals = accepts = 0;

  std::vector<RunningStats> stats(k);
  if (options.keep_samples) result.samples.reserve(options.num_samples);
  for (std::size_t s = 0; s < options.num_samples; ++s) {
    for (std::size_t t = 0; t <= options.thinning; ++t) {
      sweep(/*warming=*/false);
    }
    for (std::size_t j = 0; j < k; ++j) stats[j].Add(p[j]);
    if (options.keep_samples) result.samples.push_back(p);
  }

  result.mean.resize(k);
  result.sd.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    result.mean[j] = stats[j].Mean();
    result.sd[j] = stats[j].StdDev();
  }
  result.acceptance_rate =
      proposals > 0
          ? static_cast<double>(accepts) / static_cast<double>(proposals)
          : 0.0;
  return result;
}

}  // namespace infoflow
