#include "learn/summary.h"

#include <algorithm>
#include <limits>
#include <map>

#include "util/check.h"

namespace infoflow {

std::size_t SummaryRow::Cardinality() const {
  std::size_t n = 0;
  for (std::uint8_t b : mask) n += b ? 1 : 0;
  return n;
}

std::uint64_t SinkSummary::TotalCount() const {
  std::uint64_t total = 0;
  for (const SummaryRow& row : rows) total += row.count;
  return total;
}

std::string SinkSummary::ToString() const {
  std::string out = "Summary for sink ";
  out += std::to_string(sink);
  out += "\nid | ";
  for (NodeId p : parents) {
    out += std::to_string(p);
    out += ' ';
  }
  out += "| count | leaks\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out += std::to_string(r + 1);
    out += "  | ";
    for (std::uint8_t b : rows[r].mask) out += b ? "1 " : "0 ";
    out += "| ";
    out += std::to_string(rows[r].count);
    out += " | ";
    out += std::to_string(rows[r].leaks);
    out += '\n';
  }
  if (unexplained_objects > 0) {
    out += '(';
    out += std::to_string(unexplained_objects);
    out += " unexplained objects skipped)\n";
  }
  return out;
}

SinkSummary BuildSinkSummary(const DirectedGraph& graph, NodeId sink,
                             const UnattributedEvidence& evidence,
                             const SummaryOptions& options) {
  IF_CHECK(sink < graph.num_nodes()) << "sink " << sink << " out of range";
  SinkSummary summary;
  summary.sink = sink;
  for (EdgeId e : graph.InEdges(sink)) {
    summary.parents.push_back(graph.edge(e).src);
    summary.parent_edges.push_back(e);
  }
  if (summary.parents.empty()) return summary;

  // Deterministic row ordering: map keyed by the mask bytes (as a string —
  // char_traits comparison sidesteps a GCC 12 -O3 diagnostic false positive
  // on vector<uint8_t>'s operator<=>).
  std::map<std::string, SummaryRow> rows;

  for (const ObjectTrace& trace : evidence.traces) {
    const double sink_time = trace.TimeOf(sink);
    const bool sink_active =
        sink_time != std::numeric_limits<double>::infinity();
    std::vector<std::uint8_t> mask(summary.parents.size(), 0);
    bool any = false;
    for (std::size_t j = 0; j < summary.parents.size(); ++j) {
      const double parent_time = trace.TimeOf(summary.parents[j]);
      bool prior;
      if (options.policy == CharacteristicPolicy::kAllPrior) {
        // "Active temporally before k" — or by end of trace when k is
        // inactive (sink_time = +inf handles both cases).
        prior = parent_time < sink_time;
      } else {
        prior = sink_active
                    ? (parent_time < sink_time &&
                       parent_time >= sink_time - options.discrete_step)
                    : parent_time < sink_time;
      }
      if (prior) {
        mask[j] = 1;
        any = true;
      }
    }
    if (!any) {
      // No candidate cause. If the sink still activated, the object is
      // unexplained by this model fragment (external entry / sink was the
      // origin); either way the row carries no edge information.
      if (sink_active) ++summary.unexplained_objects;
      continue;
    }
    SummaryRow& row = rows[std::string(mask.begin(), mask.end())];
    if (row.mask.empty()) row.mask = mask;
    ++row.count;
    if (sink_active) ++row.leaks;
  }
  summary.rows.reserve(rows.size());
  for (auto& [mask, row] : rows) summary.rows.push_back(std::move(row));
  return summary;
}

std::vector<SinkSummary> BuildAllSinkSummaries(
    const DirectedGraph& graph, const UnattributedEvidence& evidence,
    const SummaryOptions& options) {
  std::vector<SinkSummary> out;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InDegree(v) == 0) continue;
    out.push_back(BuildSinkSummary(graph, v, evidence, options));
  }
  return out;
}

}  // namespace infoflow
