#include "learn/goyal.h"

#include "util/check.h"

namespace infoflow {

GoyalResult FitGoyal(const SinkSummary& summary) {
  const std::size_t k = summary.parents.size();
  GoyalResult result;
  result.sink = summary.sink;
  result.parents = summary.parents;
  result.parent_edges = summary.parent_edges;
  result.estimate.assign(k, 0.0);

  std::vector<double> credit(k, 0.0);
  std::vector<double> exposure(k, 0.0);  // |{o : j ∈ J_o}|
  for (const SummaryRow& row : summary.rows) {
    const std::size_t cardinality = row.Cardinality();
    IF_DCHECK(cardinality > 0);
    const double share = static_cast<double>(row.leaks) /
                         static_cast<double>(cardinality);
    for (std::size_t j = 0; j < k; ++j) {
      if (!row.mask[j]) continue;
      credit[j] += share;
      exposure[j] += static_cast<double>(row.count);
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    if (exposure[j] > 0.0) result.estimate[j] = credit[j] / exposure[j];
  }
  return result;
}

}  // namespace infoflow
