/// \file summary.h
/// \brief Evidence summaries — the sufficient statistic for per-sink
/// unattributed learning (§V-B, Table I).
///
/// Fix a sink node k with incident parents (the sources of k's in-edges).
/// For each object o, the *characteristic* J_o is the set of parents active
/// temporally before k: if k activated, those active strictly before k's
/// activation; otherwise, those active by the end of the trace. The summary
/// groups objects by characteristic and records, per characteristic, how
/// many objects showed it (count) and how many of those leaked to k
/// (leaks). Because flows are atomic, the Binomial over each characteristic
/// (Eq. 9) is the exact likelihood — the summary loses nothing.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "learn/unattributed.h"
#include "util/status.h"

namespace infoflow {

/// \brief How the characteristic is read off a trace. kAllPrior is the
/// paper's (and Goyal et al.'s) assumption; kDiscreteStep reproduces Saito
/// et al.'s original time-discrete model, where only parents active in the
/// immediately-preceding time step may be responsible.
enum class CharacteristicPolicy {
  /// Parents active any time strictly before the sink (paper §V-A: "we can
  /// only be sure that the parent responsible was active first").
  kAllPrior,
  /// Parents active within the last `step` time units before the sink's
  /// activation (Saito's t → t+1 discretization).
  kDiscreteStep,
};

/// \brief One summary row: a characteristic with its observation counts.
struct SummaryRow {
  /// Parent-set bitmask over the sink's incident parents, one byte per
  /// parent slot (index into SinkSummary::parents).
  std::vector<std::uint8_t> mask;
  /// n_J: number of objects whose characteristic is this set.
  std::uint64_t count = 0;
  /// L_J: of those, how many leaked to (activated) the sink.
  std::uint64_t leaks = 0;

  /// Number of parents in the characteristic.
  std::size_t Cardinality() const;
};

/// \brief The per-sink evidence summary D_k.
struct SinkSummary {
  NodeId sink = kInvalidNode;
  /// Incident parent nodes (sources of the sink's in-edges), in the
  /// graph's InEdges order. Row masks index into this.
  std::vector<NodeId> parents;
  /// Corresponding parent edge ids (same order as `parents`).
  std::vector<EdgeId> parent_edges;
  /// One row per distinct non-empty characteristic.
  std::vector<SummaryRow> rows;
  /// Objects skipped because no parent was active before the sink (the sink
  /// originated the object or it arrived from outside the modeled graph).
  std::uint64_t unexplained_objects = 0;

  /// Total observed objects across rows.
  std::uint64_t TotalCount() const;

  /// Table-I-style rendering for diagnostics and the examples.
  std::string ToString() const;
};

/// \brief Options for summary construction.
struct SummaryOptions {
  CharacteristicPolicy policy = CharacteristicPolicy::kAllPrior;
  /// Time-step width for kDiscreteStep.
  double discrete_step = 1.0;
};

/// \brief Builds the summary for one sink from unattributed traces.
/// Objects that never touch the sink's in-neighborhood contribute nothing;
/// objects where the sink is active with an empty characteristic are
/// tallied in `unexplained_objects`.
SinkSummary BuildSinkSummary(const DirectedGraph& graph, NodeId sink,
                             const UnattributedEvidence& evidence,
                             const SummaryOptions& options = {});

/// \brief Builds summaries for every node with at least one in-edge.
std::vector<SinkSummary> BuildAllSinkSummaries(
    const DirectedGraph& graph, const UnattributedEvidence& evidence,
    const SummaryOptions& options = {});

}  // namespace infoflow
