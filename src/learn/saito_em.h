/// \file saito_em.h
/// \brief Saito et al.'s expectation-maximization estimator, in the
/// summarized form derived in the paper's Appendix.
///
/// E step (per characteristic J):   P̂_J = 1 − Π_{v∈J} (1 − κ_v)
/// M step (per parent v):           κ_v ← (Σ_{J∋v} L_J · κ_v / P̂_J)
///                                        / (Σ_{J∋v} n_J)
///
/// where n_J / L_J are the characteristic's count / leak totals, and the
/// denominator Σ_{J∋v} n_J = |S⁺_v| + |S⁻_v| (objects where v was active
/// before the sink). Parents with no such objects keep their previous κ.
///
/// EM gives a *point* estimate — the mode of the likelihood — and can stall
/// in local maxima when the likelihood is multimodal (Appendix, Table II /
/// Fig. 11); random restarts are supported to reproduce that demonstration.
/// The original Saito formulation further assumes a parent must activate in
/// the time step immediately before the child; build the summary with
/// CharacteristicPolicy::kDiscreteStep to emulate it (the "Saito" series of
/// Fig. 7), or kAllPrior for the paper's relaxed variant.

#pragma once

#include <cstdint>
#include <vector>

#include "learn/summary.h"
#include "stats/rng.h"

namespace infoflow {

/// \brief EM configuration.
struct SaitoEmOptions {
  /// Maximum EM iterations per run (the Appendix fixes 200 for Fig. 11).
  std::size_t max_iterations = 200;
  /// Stop when no κ moves more than this between iterations.
  double tolerance = 1e-9;
  /// Initial κ values: when true, draw κ ~ U(0,1) (random restart); when
  /// false, start every κ at 0.5.
  bool random_init = true;
};

/// \brief One EM run's outcome.
struct SaitoEmResult {
  NodeId sink = kInvalidNode;
  std::vector<NodeId> parents;
  std::vector<EdgeId> parent_edges;
  /// Converged κ (activation probability) per parent.
  std::vector<double> estimate;
  /// Iterations actually used.
  std::size_t iterations = 0;
  /// Log-likelihood of the evidence at the final estimate.
  double log_likelihood = 0.0;
  /// True when the tolerance test passed before max_iterations.
  bool converged = false;
};

/// Binomial log-likelihood of the summary at parent probabilities `kappa`
/// (constants dropped); the objective EM climbs.
double SaitoLogLikelihood(const SinkSummary& summary,
                          const std::vector<double>& kappa);

/// \brief Runs EM once from one initialization.
SaitoEmResult FitSaitoEm(const SinkSummary& summary,
                         const SaitoEmOptions& options, Rng& rng);

/// \brief Runs `num_restarts` independent EM runs and returns them all
/// (Fig. 11 plots the cloud; callers wanting the best pick the max
/// log_likelihood).
std::vector<SaitoEmResult> FitSaitoEmRestarts(const SinkSummary& summary,
                                              const SaitoEmOptions& options,
                                              std::size_t num_restarts,
                                              Rng& rng);

}  // namespace infoflow
