/// \file attributed.h
/// \brief Attributed evidence and the Beta-counting trainer (§II-A).
///
/// Attributed evidence D = (O, F) records, for each information object, its
/// sources, its active nodes and its active *edges* — i.e. for every
/// non-source activation we know which incident node caused it (typical
/// when the social graph is known, e.g. Facebook/Google+, or after the
/// retweet-chain preprocessing of §IV-B).
///
/// Training (§II-A) is exact Bayesian conjugate counting: every edge starts
/// at Beta(1, 1); for each object, an active edge increments α, and an
/// inactive edge whose parent node was active increments β. Edges whose
/// parent never activated carry no information about that object and are
/// untouched.

#pragma once

#include <vector>

#include "core/beta_icm.h"
#include "graph/graph.h"
#include "util/status.h"

namespace infoflow {

/// \brief One object's attributed flow (V_i^⊕, V_i, E_i).
struct AttributedObject {
  /// Source vertices V_i^⊕ (must be non-empty and a subset of active_nodes).
  std::vector<NodeId> sources;
  /// All i-active nodes V_i (must include the sources).
  std::vector<NodeId> active_nodes;
  /// All i-active edges E_i (each must have an active parent node).
  std::vector<EdgeId> active_edges;
};

/// \brief The evidence set D = (O, F).
struct AttributedEvidence {
  std::vector<AttributedObject> objects;
};

/// Checks an evidence set's internal consistency against a graph: ids in
/// range, sources ⊆ active nodes, active edges have active endpoints, and
/// every non-source active node has at least one active incoming edge.
Status ValidateAttributedEvidence(const DirectedGraph& graph,
                                  const AttributedEvidence& evidence);

/// Single-object variant (the streaming ingest path validates records one
/// at a time as they arrive); `index` labels error messages.
Status ValidateAttributedObject(const DirectedGraph& graph,
                                const AttributedObject& object,
                                std::size_t index = 0);

/// \brief Trains a betaICM from attributed evidence by the §II-A counting
/// algorithm. Validates first.
Result<BetaIcm> TrainBetaIcmFromAttributed(
    std::shared_ptr<const DirectedGraph> graph,
    const AttributedEvidence& evidence);

/// \brief In-place incremental variant: folds one more object into an
/// existing betaICM (supports streaming / online updates — the "absorb
/// network changes efficiently" goal of §I). The object must be valid for
/// the model's graph.
Status UpdateBetaIcmWithObject(BetaIcm& model, const AttributedObject& object);

/// \brief Merges two betaICMs trained (from the uniform prior) on disjoint
/// evidence over the *same* graph into the model the combined evidence
/// would produce: conjugate counting is additive, so
/// α = α₁ + α₂ − 1 and β = β₁ + β₂ − 1 (subtracting the double-counted
/// Beta(1,1) prior). Enables sharded/federated training: count locally,
/// merge centrally. Fails when the graphs differ.
Result<BetaIcm> MergeBetaIcms(const BetaIcm& a, const BetaIcm& b);

}  // namespace infoflow
