#include "learn/filtered.h"

#include "learn/joint_bayes.h"

namespace infoflow {

FilteredResult FitFiltered(const SinkSummary& summary) {
  FilteredResult result;
  result.sink = summary.sink;
  result.parents = summary.parents;
  result.parent_edges = summary.parent_edges;
  // The filtered posterior *is* the joint-Bayes prior: Beta counting over
  // singleton characteristics only.
  result.posterior = UnambiguousPriors(summary);
  result.estimate.reserve(result.posterior.size());
  for (const BetaDist& b : result.posterior) {
    result.estimate.push_back(b.Mean());
  }
  return result;
}

}  // namespace infoflow
