/// \file goyal.h
/// \brief The Goyal et al. equal-credit baseline (§V-A/B).
///
/// Each object o that leaked to sink k splits one unit of credit equally
/// among the parents active before k (credit_{j}(o) = 1/|J_o| for j ∈ J_o);
/// an edge's estimate is its accumulated credit normalized by the number of
/// objects in which its parent was active before k:
///
///   p_{j,k} = Σ_o credit_j(o) / |{o : j ∈ J_o}|
///
/// The paper calls this "only a rule of thumb" that biases estimates toward
/// the mean of all edges incident to k — Fig. 7 quantifies that bias. The
/// estimator runs directly off the evidence summary, which it treats (like
/// our method) as a sufficient statistic.
///
/// Theorem 1 (§V-A) shows Goyal et al.'s Simplified General Threshold Model
/// is equivalent to the ICM with identical edge weights, so the numbers are
/// directly comparable; a property test verifies the equivalence by
/// simulation.

#pragma once

#include <vector>

#include "learn/summary.h"

namespace infoflow {

/// \brief Point estimates per parent edge of one sink.
struct GoyalResult {
  NodeId sink = kInvalidNode;
  std::vector<NodeId> parents;
  std::vector<EdgeId> parent_edges;
  /// Equal-credit activation probability estimate per parent.
  std::vector<double> estimate;
};

/// \brief Runs the credit estimator on a sink summary. Parents never active
/// before the sink in any object get estimate 0.
GoyalResult FitGoyal(const SinkSummary& summary);

}  // namespace infoflow
