#include "learn/evidence_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace infoflow {

namespace {

constexpr const char* kAttributedHeader = "infoflow-attributed v1";
constexpr const char* kTracesHeader = "infoflow-traces v1";

Status ParseNodeId(const std::string& field, NodeId* out) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size() ||
      value >= kInvalidNode) {
    return Status::ParseError("bad node id '", field, "'");
  }
  *out = static_cast<NodeId>(value);
  return Status::OK();
}

/// Parses the shared "<header>\n<key> <count>\n" preamble; returns the
/// remaining non-empty lines.
Result<std::vector<std::string>> ParseBody(const std::string& text,
                                           const std::string& header,
                                           const std::string& count_key,
                                           std::size_t* count_out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Trim(line) != header) {
    return Status::ParseError("missing header '", header, "'");
  }
  if (!std::getline(in, line)) {
    return Status::ParseError("missing '", count_key, "' line");
  }
  const auto fields = SplitWhitespace(line);
  if (fields.size() != 2 || fields[0] != count_key) {
    return Status::ParseError("expected '", count_key, " <count>', got '",
                              line, "'");
  }
  std::uint64_t count = 0;
  const auto [ptr, ec] = std::from_chars(
      fields[1].data(), fields[1].data() + fields[1].size(), count);
  if (ec != std::errc() || ptr != fields[1].data() + fields[1].size()) {
    return Status::ParseError("bad count '", fields[1], "'");
  }
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) lines.emplace_back(Trim(line));
  }
  if (lines.size() != count) {
    return Status::ParseError("expected ", count, " records, found ",
                              lines.size());
  }
  *count_out = count;
  return lines;
}

Status WriteTextFile(const std::string& text, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '", path, "' for writing");
  out << text;
  if (!out) return Status::IOError("write failed for '", path, "'");
  return Status::OK();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '", path, "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SerializeAttributedEvidence(const DirectedGraph& graph,
                                        const AttributedEvidence& evidence) {
  std::string out = kAttributedHeader;
  out += "\nobjects ";
  out += std::to_string(evidence.objects.size());
  out += '\n';
  for (const AttributedObject& obj : evidence.objects) {
    for (std::size_t i = 0; i < obj.sources.size(); ++i) {
      if (i) out += ' ';
      out += std::to_string(obj.sources[i]);
    }
    out += '|';
    for (std::size_t i = 0; i < obj.active_nodes.size(); ++i) {
      if (i) out += ' ';
      out += std::to_string(obj.active_nodes[i]);
    }
    out += '|';
    for (std::size_t i = 0; i < obj.active_edges.size(); ++i) {
      if (i) out += ' ';
      const Edge& edge = graph.edge(obj.active_edges[i]);
      out += std::to_string(edge.src);
      out += '>';
      out += std::to_string(edge.dst);
    }
    out += '\n';
  }
  return out;
}

Result<AttributedObject> ParseAttributedObjectLine(const std::string& line,
                                                   const DirectedGraph& graph) {
  const auto fields = Split(line, '|');
  if (fields.size() != 3) {
    return Status::ParseError("expected 'sources|nodes|edges'");
  }
  AttributedObject obj;
  std::uint64_t duplicates = 0;
  // Repeats within a field are collapsed, first occurrence kept: a node
  // listed twice in active_nodes would double every Beta update its
  // out-edges receive (learn/attributed.cc iterates active nodes), and a
  // repeated source/edge carries no extra information either.
  const auto push_unique = [&duplicates](auto& out, auto value) {
    if (std::find(out.begin(), out.end(), value) != out.end()) {
      ++duplicates;
      return;
    }
    out.push_back(value);
  };
  for (const std::string& id : SplitWhitespace(fields[0])) {
    NodeId v = 0;
    IF_RETURN_NOT_OK(ParseNodeId(id, &v));
    push_unique(obj.sources, v);
  }
  for (const std::string& id : SplitWhitespace(fields[1])) {
    NodeId v = 0;
    IF_RETURN_NOT_OK(ParseNodeId(id, &v));
    push_unique(obj.active_nodes, v);
  }
  for (const std::string& pair : SplitWhitespace(fields[2])) {
    const auto endpoints = Split(pair, '>');
    if (endpoints.size() != 2) {
      return Status::ParseError("bad edge '", pair, "'");
    }
    NodeId src = 0, dst = 0;
    IF_RETURN_NOT_OK(ParseNodeId(endpoints[0], &src));
    IF_RETURN_NOT_OK(ParseNodeId(endpoints[1], &dst));
    if (src >= graph.num_nodes() || dst >= graph.num_nodes()) {
      return Status::ParseError("edge '", pair, "' outside the graph");
    }
    const EdgeId e = graph.FindEdge(src, dst);
    if (e == kInvalidEdge) {
      return Status::ParseError("edge '", pair, "' not present in the graph");
    }
    push_unique(obj.active_edges, e);
  }
  if (duplicates > 0) {
    obs::GetCounter("parse.duplicates").Increment(duplicates);
  }
  return obj;
}

Result<ObjectTrace> ParseTraceLine(const std::string& line) {
  ObjectTrace trace;
  if (line == "-") return trace;  // empty-trace sentinel
  std::uint64_t duplicates = 0;
  for (const std::string& token : SplitWhitespace(line)) {
    const auto parts = Split(token, ':');
    if (parts.size() != 2) {
      return Status::ParseError("bad activation '", token, "'");
    }
    NodeId node = 0;
    IF_RETURN_NOT_OK(ParseNodeId(parts[0], &node));
    double time = 0.0;
    try {
      std::size_t consumed = 0;
      time = std::stod(parts[1], &consumed);
      if (consumed != parts[1].size()) {
        return Status::ParseError("bad time '", parts[1], "'");
      }
    } catch (const std::exception&) {
      return Status::ParseError("bad time '", parts[1], "'");
    }
    const auto it = std::find_if(
        trace.activations.begin(), trace.activations.end(),
        [node](const Activation& a) { return a.node == node; });
    if (it != trace.activations.end()) {
      // A doubled record collapses; conflicting times cannot (atomic
      // information activates a node once — §I).
      if (it->time == time) {
        ++duplicates;
        continue;
      }
      return Status::ParseError("node ", node, " repeated with conflicting "
                                "times ", it->time, " and ", time);
    }
    trace.activations.push_back({node, time});
  }
  if (duplicates > 0) {
    obs::GetCounter("parse.duplicates").Increment(duplicates);
  }
  return trace;
}

Result<AttributedEvidence> DeserializeAttributedEvidence(
    const std::string& text, const DirectedGraph& graph) {
  std::size_t count = 0;
  auto lines = ParseBody(text, kAttributedHeader, "objects", &count);
  if (!lines.ok()) return lines.status();

  AttributedEvidence evidence;
  evidence.objects.reserve(count);
  for (std::size_t i = 0; i < lines->size(); ++i) {
    auto obj = ParseAttributedObjectLine((*lines)[i], graph);
    if (!obj.ok()) {
      return Status::ParseError("object line ", i + 1, ": ",
                                obj.status().message());
    }
    evidence.objects.push_back(std::move(*obj));
  }
  IF_RETURN_NOT_OK(ValidateAttributedEvidence(graph, evidence));
  return evidence;
}

std::string SerializeUnattributedEvidence(
    const UnattributedEvidence& evidence) {
  std::string out = kTracesHeader;
  out += "\ntraces ";
  out += std::to_string(evidence.traces.size());
  out += '\n';
  char buf[64];
  for (const ObjectTrace& trace : evidence.traces) {
    if (trace.activations.empty()) {
      out += "-\n";  // sentinel: an empty trace is a record, not a blank
      continue;
    }
    for (std::size_t i = 0; i < trace.activations.size(); ++i) {
      if (i) out += ' ';
      std::snprintf(buf, sizeof(buf), "%u:%.17g", trace.activations[i].node,
                    trace.activations[i].time);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

Result<UnattributedEvidence> DeserializeUnattributedEvidence(
    const std::string& text) {
  std::size_t count = 0;
  auto lines = ParseBody(text, kTracesHeader, "traces", &count);
  if (!lines.ok()) return lines.status();
  UnattributedEvidence evidence;
  evidence.traces.reserve(count);
  for (std::size_t i = 0; i < lines->size(); ++i) {
    auto trace = ParseTraceLine((*lines)[i]);
    if (!trace.ok()) {
      return Status::ParseError("trace line ", i + 1, ": ",
                                trace.status().message());
    }
    evidence.traces.push_back(std::move(*trace));
  }
  return evidence;
}

Status SaveAttributedEvidence(const DirectedGraph& graph,
                              const AttributedEvidence& evidence,
                              const std::string& path) {
  return WriteTextFile(SerializeAttributedEvidence(graph, evidence), path);
}

Result<AttributedEvidence> LoadAttributedEvidence(const std::string& path,
                                                  const DirectedGraph& graph) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return DeserializeAttributedEvidence(*text, graph);
}

Status SaveUnattributedEvidence(const UnattributedEvidence& evidence,
                                const std::string& path) {
  return WriteTextFile(SerializeUnattributedEvidence(evidence), path);
}

Result<UnattributedEvidence> LoadUnattributedEvidence(
    const std::string& path) {
  auto text = ReadTextFile(path);
  if (!text.ok()) return text.status();
  return DeserializeUnattributedEvidence(*text);
}

}  // namespace infoflow
