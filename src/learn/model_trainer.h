/// \file model_trainer.h
/// \brief Whole-graph unattributed training: runs a per-sink estimator over
/// every sink and assembles per-edge (mean, sd) tables — the models behind
/// the URL/hashtag flow experiments (Fig. 8–10).
///
/// Per §V-D, the full joint posterior is approximated by its per-edge mean
/// and standard deviation; ToPointIcm() takes the means, and
/// SampleGaussianIcm() draws each edge from N(mean, sd) clamped to [0, 1]
/// (the Fig. 10 sampling scheme).

#pragma once

#include <functional>
#include <memory>

#include "core/icm.h"
#include "learn/joint_bayes.h"
#include "learn/saito_em.h"
#include "learn/summary.h"
#include "learn/unattributed.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Which per-sink estimator to run.
enum class UnattributedMethod {
  kJointBayes,  ///< the paper's method (§V-B)
  kGoyal,       ///< equal-credit baseline
  kSaitoEm,     ///< EM baseline (best of restarts)
  kFiltered,    ///< unambiguous-only counting
};

/// Canonical lower-case name of a method ("joint-bayes", ...).
const char* UnattributedMethodName(UnattributedMethod method);

/// \brief A trained whole-graph model: per-edge mean and sd (sd = 0 for
/// point estimators).
struct UnattributedModel {
  std::shared_ptr<const DirectedGraph> graph;
  std::vector<double> mean;
  std::vector<double> sd;

  /// Point ICM at the edge means.
  PointIcm ToPointIcm() const;

  /// One ICM draw with each edge ~ N(mean, sd) clamped into [0, 1]
  /// (Fig. 10's edge-uncertainty sampling).
  PointIcm SampleGaussianIcm(Rng& rng) const;
};

/// \brief Training configuration.
struct UnattributedTrainOptions {
  UnattributedMethod method = UnattributedMethod::kJointBayes;
  SummaryOptions summary;
  JointBayesOptions joint_bayes;
  SaitoEmOptions saito;
  /// Random restarts for kSaitoEm (best log-likelihood wins).
  std::size_t saito_restarts = 5;
  /// Mean assigned to edges whose sink saw no evidence at all. The paper's
  /// default prior Beta(1,1) implies 0.5; prediction-oriented callers often
  /// prefer 0 (an edge never witnessed carrying anything).
  double no_evidence_mean = 0.5;
};

/// \brief Trains per-edge activation estimates for the whole graph from
/// unattributed traces.
Result<UnattributedModel> TrainUnattributedModel(
    std::shared_ptr<const DirectedGraph> graph,
    const UnattributedEvidence& evidence,
    const UnattributedTrainOptions& options, Rng& rng);

/// \brief The estimator loop of TrainUnattributedModel with the summary
/// source abstracted: `summary_for_sink(k)` supplies D_k for every sink
/// with at least one in-edge, visited in ascending sink order. The batch
/// trainer passes BuildSinkSummary over its trace set; the streaming
/// OnlineTrainer (stream/online_trainer.h) passes its incrementally
/// maintained summaries. Both paths drive the identical per-sink fit
/// switch and consume `rng` identically, which is what makes online
/// training with decay=1/window=∞ reproduce the batch model *exactly* —
/// not just approximately (sinks whose summary has no rows are skipped
/// without touching the rng, matching the batch loop).
Result<UnattributedModel> TrainUnattributedFromSummaries(
    std::shared_ptr<const DirectedGraph> graph,
    const std::function<SinkSummary(NodeId)>& summary_for_sink,
    const UnattributedTrainOptions& options, Rng& rng);

}  // namespace infoflow
