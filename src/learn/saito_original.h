/// \file saito_original.h
/// \brief Saito, Nakano & Kimura's original EM estimator ([4] in the
/// paper), operating directly on raw activation traces.
///
/// Differences from the summarized variant in saito_em.h:
///  - **Timing**: the original assumes a discrete-time process — a parent
///    active at step t can only be responsible for a child activating at
///    step t+1. (The paper's §V-A critique: real feeds guarantee no such
///    thing.) `time_step` defines the step width on continuous traces.
///  - **Evidence form**: iterates the raw per-object Bernoulli terms every
///    E/M step, the O(n·m) cost per iteration the paper's Appendix removes
///    by summarizing into Binomials.
///
/// Given identical responsibility structure — i.e. when the summary is
/// built with CharacteristicPolicy::kDiscreteStep and the same step — the
/// two implementations compute identical iterates; a property test pins
/// that equivalence, which is exactly the Appendix's claim.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "learn/unattributed.h"
#include "stats/rng.h"

namespace infoflow {

/// \brief Configuration for the original EM.
struct SaitoOriginalOptions {
  std::size_t max_iterations = 200;
  double tolerance = 1e-9;
  /// Discrete step width: a parent is responsible only when active within
  /// [t_child - time_step, t_child).
  double time_step = 1.0;
  /// κ initialization: U(0,1) when true, 0.5 otherwise.
  bool random_init = false;
};

/// \brief Per-parent point estimates for one sink.
struct SaitoOriginalResult {
  NodeId sink = kInvalidNode;
  std::vector<NodeId> parents;
  std::vector<EdgeId> parent_edges;
  std::vector<double> estimate;
  std::size_t iterations = 0;
  bool converged = false;
};

/// \brief Runs the original raw-trace EM for one sink node.
SaitoOriginalResult FitSaitoOriginal(const DirectedGraph& graph, NodeId sink,
                                     const UnattributedEvidence& evidence,
                                     const SaitoOriginalOptions& options,
                                     Rng& rng);

}  // namespace infoflow
