/// \file evidence_io.h
/// \brief Text serialization for evidence sets — the data-plumbing layer
/// that lets training inputs move between processes (and powers the
/// `infoflow` CLI tool).
///
/// Attributed evidence ("infoflow-attributed v1"): one object per line,
/// three '|'-separated fields — sources, active nodes, active edges —
/// with ids space-separated and edges written as `src>dst` (graph-id
/// independent; resolved against a graph at load time):
///
///   infoflow-attributed v1
///   objects 2
///   0|0 1 2|0>1 1>2
///   3|3 4|3>4
///
/// Unattributed traces ("infoflow-traces v1"): one trace per line, each
/// activation as `node:time`:
///
///   infoflow-traces v1
///   traces 1
///   0:0 2:1.5 5:3.25

#pragma once

#include <string>

#include "learn/attributed.h"
#include "learn/unattributed.h"
#include "util/status.h"

namespace infoflow {

/// Serializes attributed evidence; edges are written by endpoints, so the
/// output is portable across graphs that contain the same relationships.
std::string SerializeAttributedEvidence(const DirectedGraph& graph,
                                        const AttributedEvidence& evidence);

/// \brief Parses one attributed-object body line ("sources|nodes|edges")
/// against `graph`. Duplicate ids within a field are dropped rather than
/// kept: a repeated active node would double-count every Beta update its
/// out-edges receive in the §II-A trainer, silently biasing the model.
/// Each dropped repeat increments the `parse.duplicates` metric. The object
/// is *not* validated (callers batch validation across objects).
///
/// Shared by DeserializeAttributedEvidence and the streaming
/// stream/EvidenceStream reader, so file and live ingestion accept the
/// identical record grammar.
Result<AttributedObject> ParseAttributedObjectLine(const std::string& line,
                                                   const DirectedGraph& graph);

/// \brief Parses one unattributed-trace body line ("node:time ..." or the
/// "-" empty-trace sentinel). A node repeated with the *same* time is
/// dropped and counted in `parse.duplicates` (a doubled record, harmless to
/// collapse); repeats with conflicting times are a ParseError — an atomic
/// object activates a node at most once, so there is no meaningful merge.
Result<ObjectTrace> ParseTraceLine(const std::string& line);

/// Parses attributed evidence against `graph` (edges resolved with
/// FindEdge; a referenced edge missing from the graph is a ParseError).
/// The result is validated before being returned.
Result<AttributedEvidence> DeserializeAttributedEvidence(
    const std::string& text, const DirectedGraph& graph);

/// Serializes unattributed traces.
std::string SerializeUnattributedEvidence(
    const UnattributedEvidence& evidence);

/// Parses unattributed traces (graph-independent; node-range validation
/// happens when the traces meet a graph).
Result<UnattributedEvidence> DeserializeUnattributedEvidence(
    const std::string& text);

/// File convenience wrappers.
Status SaveAttributedEvidence(const DirectedGraph& graph,
                              const AttributedEvidence& evidence,
                              const std::string& path);
Result<AttributedEvidence> LoadAttributedEvidence(const std::string& path,
                                                  const DirectedGraph& graph);
Status SaveUnattributedEvidence(const UnattributedEvidence& evidence,
                                const std::string& path);
Result<UnattributedEvidence> LoadUnattributedEvidence(
    const std::string& path);

}  // namespace infoflow
