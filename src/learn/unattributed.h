/// \file unattributed.h
/// \brief Unattributed evidence: activation *times* without attribution
/// (§V). One knows which nodes held the information and when, but not which
/// neighbor delivered it — typical of hashtags, URLs, blogs, email.

#pragma once

#include <limits>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace infoflow {

/// \brief One node's activation for one object.
struct Activation {
  NodeId node;
  /// Activation timestamp; any monotone clock works (the learners only use
  /// the ordering).
  double time;
};

/// \brief The activation trace of a single information object: every node
/// that became active, with its time. A node appears at most once (atomic
/// information, §I).
struct ObjectTrace {
  std::vector<Activation> activations;

  /// Activation time of `v`, or +infinity when v never activated.
  double TimeOf(NodeId v) const;

  /// True when `v` activated.
  bool IsActive(NodeId v) const {
    return TimeOf(v) != std::numeric_limits<double>::infinity();
  }
};

/// \brief A full unattributed evidence set: one trace per object.
struct UnattributedEvidence {
  std::vector<ObjectTrace> traces;
};

/// Checks traces: node ids in range, no duplicate node per trace, finite
/// times.
Status ValidateUnattributedEvidence(const DirectedGraph& graph,
                                    const UnattributedEvidence& evidence);

}  // namespace infoflow
