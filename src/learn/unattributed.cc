#include "learn/unattributed.h"

#include <cmath>
#include <unordered_set>

namespace infoflow {

double ObjectTrace::TimeOf(NodeId v) const {
  for (const Activation& a : activations) {
    if (a.node == v) return a.time;
  }
  return std::numeric_limits<double>::infinity();
}

Status ValidateUnattributedEvidence(const DirectedGraph& graph,
                                    const UnattributedEvidence& evidence) {
  for (std::size_t i = 0; i < evidence.traces.size(); ++i) {
    std::unordered_set<NodeId> seen;
    for (const Activation& a : evidence.traces[i].activations) {
      if (a.node >= graph.num_nodes()) {
        return Status::OutOfRange("trace ", i, " activates node ", a.node,
                                  " out of range; n=", graph.num_nodes());
      }
      if (!std::isfinite(a.time)) {
        return Status::InvalidArgument("trace ", i, " node ", a.node,
                                       " has non-finite time");
      }
      if (!seen.insert(a.node).second) {
        return Status::InvalidArgument(
            "trace ", i, " activates node ", a.node,
            " twice (information is atomic: a node activates at most once)");
      }
    }
  }
  return Status::OK();
}

}  // namespace infoflow
