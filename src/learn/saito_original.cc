#include "learn/saito_original.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace infoflow {

SaitoOriginalResult FitSaitoOriginal(const DirectedGraph& graph, NodeId sink,
                                     const UnattributedEvidence& evidence,
                                     const SaitoOriginalOptions& options,
                                     Rng& rng) {
  IF_CHECK(sink < graph.num_nodes()) << "sink " << sink << " out of range";
  SaitoOriginalResult result;
  result.sink = sink;
  for (EdgeId e : graph.InEdges(sink)) {
    result.parents.push_back(graph.edge(e).src);
    result.parent_edges.push_back(e);
  }
  const std::size_t k = result.parents.size();
  result.estimate.assign(k, 0.5);
  if (k == 0) {
    result.converged = true;
    return result;
  }
  if (options.random_init) {
    for (double& kappa : result.estimate) kappa = rng.NextDouble();
  }

  // Pre-extract, per object, the implicated-parent mask (active in the
  // step immediately before the sink, or any time before the trace end
  // when the sink never activates) and the leak flag. This mirrors the
  // original's data layout: one Bernoulli term per (object, exposure).
  struct Observation {
    std::vector<std::uint8_t> mask;
    bool leak = false;
  };
  std::vector<Observation> observations;
  observations.reserve(evidence.traces.size());
  for (const ObjectTrace& trace : evidence.traces) {
    const double sink_time = trace.TimeOf(sink);
    const bool sink_active =
        sink_time != std::numeric_limits<double>::infinity();
    Observation obs;
    obs.mask.assign(k, 0);
    obs.leak = sink_active;
    bool any = false;
    for (std::size_t j = 0; j < k; ++j) {
      const double parent_time = trace.TimeOf(result.parents[j]);
      const bool implicated =
          sink_active ? (parent_time < sink_time &&
                         parent_time >= sink_time - options.time_step)
                      : parent_time < sink_time;
      if (implicated) {
        obs.mask[j] = 1;
        any = true;
      }
    }
    if (!any) continue;  // nothing implicates any parent
    observations.push_back(std::move(obs));
  }

  // Denominator per parent: |S⁺_v| + |S⁻_v| (objects implicating v).
  std::vector<double> exposure(k, 0.0);
  for (const Observation& obs : observations) {
    for (std::size_t j = 0; j < k; ++j) {
      if (obs.mask[j]) exposure[j] += 1.0;
    }
  }

  std::vector<double>& kappa = result.estimate;
  std::vector<double> next(k, 0.0);
  constexpr double kEps = 1e-12;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    std::fill(next.begin(), next.end(), 0.0);
    // E step ([4] Eq. 6): P̂_w = 1 - Π_{v∈parents(w) implicated}(1 - κ_v);
    // M step ([4] Eq. 8): responsibilities κ_v / P̂_w summed over the
    // positive objects, normalized by exposure.
    for (const Observation& obs : observations) {
      if (!obs.leak) continue;
      double survive = 1.0;
      for (std::size_t j = 0; j < k; ++j) {
        if (obs.mask[j]) survive *= 1.0 - kappa[j];
      }
      const double p_hat = std::max(1.0 - survive, kEps);
      for (std::size_t j = 0; j < k; ++j) {
        if (obs.mask[j]) next[j] += kappa[j] / p_hat;
      }
    }
    double max_move = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double updated = exposure[j] > 0.0
                                 ? std::clamp(next[j] / exposure[j], 0.0, 1.0)
                                 : kappa[j];
      max_move = std::max(max_move, std::fabs(updated - kappa[j]));
      kappa[j] = updated;
    }
    if (max_move < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace infoflow
