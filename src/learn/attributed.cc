#include "learn/attributed.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace infoflow {

Status ValidateAttributedObject(const DirectedGraph& graph,
                                const AttributedObject& obj,
                                std::size_t index) {
  if (obj.sources.empty()) {
    return Status::InvalidArgument("object ", index, " has no sources");
  }
  std::vector<std::uint8_t> node_active(graph.num_nodes(), 0);
  for (NodeId v : obj.active_nodes) {
    if (v >= graph.num_nodes()) {
      return Status::OutOfRange("object ", index, " active node ", v,
                                " out of range; n=", graph.num_nodes());
    }
    node_active[v] = 1;
  }
  std::vector<std::uint8_t> is_source(graph.num_nodes(), 0);
  for (NodeId s : obj.sources) {
    if (s >= graph.num_nodes()) {
      return Status::OutOfRange("object ", index, " source ", s,
                                " out of range");
    }
    if (!node_active[s]) {
      return Status::InvalidArgument("object ", index, " source ", s,
                                     " missing from active nodes");
    }
    is_source[s] = 1;
  }
  std::vector<std::uint8_t> has_active_in(graph.num_nodes(), 0);
  for (EdgeId e : obj.active_edges) {
    if (e >= graph.num_edges()) {
      return Status::OutOfRange("object ", index, " active edge ", e,
                                " out of range; m=", graph.num_edges());
    }
    const Edge& edge = graph.edge(e);
    if (!node_active[edge.src]) {
      return Status::InvalidArgument("object ", index, " active edge ", e,
                                     " (", edge.src, "->", edge.dst,
                                     ") has an inactive parent node");
    }
    if (!node_active[edge.dst]) {
      return Status::InvalidArgument("object ", index, " active edge ", e,
                                     " (", edge.src, "->", edge.dst,
                                     ") has an inactive child node");
    }
    has_active_in[edge.dst] = 1;
  }
  for (NodeId v : obj.active_nodes) {
    if (!is_source[v] && !has_active_in[v]) {
      return Status::InvalidArgument(
          "object ", index, " node ", v,
          " is active but is neither a source nor the child of an active "
          "edge");
    }
  }
  return Status::OK();
}

Status ValidateAttributedEvidence(const DirectedGraph& graph,
                                  const AttributedEvidence& evidence) {
  for (std::size_t i = 0; i < evidence.objects.size(); ++i) {
    IF_RETURN_NOT_OK(ValidateAttributedObject(graph, evidence.objects[i], i));
  }
  return Status::OK();
}

Status UpdateBetaIcmWithObject(BetaIcm& model,
                               const AttributedObject& object) {
  const DirectedGraph& graph = model.graph();
  IF_RETURN_NOT_OK(ValidateAttributedObject(graph, object, 0));
  std::vector<std::uint8_t> edge_active(graph.num_edges(), 0);
  for (EdgeId e : object.active_edges) edge_active[e] = 1;
  // §II-A step 2: for each edge e_jk — if e ∈ E_i bump α; else if its
  // parent v_j ∈ V_i bump β. Iterating out-edges of active nodes covers
  // exactly the edges with an active parent (all others are untouched).
  std::uint64_t edges_updated = 0;
  for (NodeId v : object.active_nodes) {
    for (EdgeId e : graph.OutEdges(v)) {
      if (edge_active[e]) {
        model.AddSuccess(e);
      } else {
        model.AddFailure(e);
      }
      ++edges_updated;
    }
  }
  obs::GetCounter("learn.attributed.edge_updates").Increment(edges_updated);
  return Status::OK();
}

Result<BetaIcm> MergeBetaIcms(const BetaIcm& a, const BetaIcm& b) {
  const DirectedGraph& ga = a.graph();
  const DirectedGraph& gb = b.graph();
  if (ga.num_nodes() != gb.num_nodes() ||
      ga.num_edges() != gb.num_edges()) {
    return Status::InvalidArgument(
        "cannot merge models over different graphs: ", a.ToString(), " vs ",
        b.ToString());
  }
  std::vector<double> alphas(ga.num_edges()), betas(ga.num_edges());
  for (EdgeId e = 0; e < ga.num_edges(); ++e) {
    if (!(ga.edge(e) == gb.edge(e))) {
      return Status::InvalidArgument("edge ", e,
                                     " differs between the two graphs");
    }
    // Counts add; the shared Beta(1,1) prior must only be kept once.
    alphas[e] = a.alpha(e) + b.alpha(e) - 1.0;
    betas[e] = a.beta(e) + b.beta(e) - 1.0;
    if (alphas[e] <= 0.0 || betas[e] <= 0.0) {
      return Status::FailedPrecondition(
          "edge ", e,
          " has sub-uniform parameters; merge requires models trained from "
          "the uniform prior");
    }
  }
  return BetaIcm(a.graph_ptr(), std::move(alphas), std::move(betas));
}

Result<BetaIcm> TrainBetaIcmFromAttributed(
    std::shared_ptr<const DirectedGraph> graph,
    const AttributedEvidence& evidence) {
  obs::TraceSpan span("learn/attributed_evidence_pass");
  IF_CHECK(graph != nullptr);
  IF_RETURN_NOT_OK(ValidateAttributedEvidence(*graph, evidence));
  BetaIcm model = BetaIcm::Uninformed(std::move(graph));
  for (const AttributedObject& obj : evidence.objects) {
    IF_RETURN_NOT_OK(UpdateBetaIcmWithObject(model, obj));
  }
  obs::GetCounter("learn.attributed.objects").Increment(
      evidence.objects.size());
  return model;
}

}  // namespace infoflow
