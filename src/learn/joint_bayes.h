/// \file joint_bayes.h
/// \brief The paper's unattributed learner: a joint Bayesian posterior over
/// the edge probabilities incident on a sink, sampled with
/// Metropolis–Hastings (§V-B, Eq. 9).
///
/// For sink k with incident parents j ∈ parents(k) and evidence summary
/// D_k = {(J, n_J, L_J)}:
///
///   p(M_k | D_k) ∝ Π_J Binomial(L_J | n_J, p_{J,k}) · Π_j Beta(p_{j,k};
///                  α_j, β_j),     p_{J,k} = 1 − Π_{j∈J} (1 − p_{j,k})
///
/// The Beta priors come from the *unambiguous* characteristics (|J| = 1)
/// only; parents with no unambiguous evidence keep the uniform Beta(1, 1).
/// Note that §V-B's likelihood runs over *all* characteristics while the
/// priors are also built from the unambiguous ones, so unambiguous
/// evidence is effectively up-weighted; we implement the paper as written
/// (bench/ablation_priors quantifies the effect of that choice).
/// The sampler is component-wise random-walk Metropolis with reflecting
/// boundaries at 0/1 and acceptance-rate adaptation during burn-in. (The
/// paper prototyped this in ~50 lines of PyMC; this is the native
/// equivalent.)
///
/// Unlike EM point estimates, the posterior captures the *uncertainty* and
/// cross-edge correlations in the edge probabilities — including the
/// multimodal cases of the Appendix (Fig. 11) where EM converges to one of
/// several local maxima.

#pragma once

#include <cstdint>
#include <vector>

#include "learn/summary.h"
#include "stats/beta_dist.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief Sampler configuration.
struct JointBayesOptions {
  /// Retained posterior samples (each is one vector of edge probabilities).
  std::size_t num_samples = 1000;
  /// Sweeps discarded before retention.
  std::size_t burn_in = 500;
  /// Sweeps discarded between retained samples.
  std::size_t thinning = 4;
  /// Initial random-walk standard deviation.
  double proposal_sd = 0.15;
  /// Adapt proposal_sd toward ~35% acceptance during burn-in.
  bool adapt = true;
  /// Retain the full sample matrix (needed for Fig. 11 scatter plots and
  /// correlation estimates); mean/sd are always computed.
  bool keep_samples = false;

  Status Validate() const;
};

/// \brief Posterior over the edge probabilities incident on one sink.
struct JointBayesResult {
  NodeId sink = kInvalidNode;
  /// Parent nodes, aligned with SinkSummary::parents.
  std::vector<NodeId> parents;
  /// Parent edge ids, aligned with `parents`.
  std::vector<EdgeId> parent_edges;
  /// Posterior mean per parent edge.
  std::vector<double> mean;
  /// Posterior standard deviation per parent edge.
  std::vector<double> sd;
  /// Prior used per parent (from unambiguous rows).
  std::vector<BetaDist> priors;
  /// Retained samples, samples[s][j] (empty unless keep_samples).
  std::vector<std::vector<double>> samples;
  /// Fraction of component proposals accepted after burn-in.
  double acceptance_rate = 0.0;

  /// Pearson correlation between parents a and b across retained samples
  /// (requires keep_samples; the paper notes the posterior "can even
  /// indicate if some edges are positively or negatively correlated").
  double SampleCorrelation(std::size_t a, std::size_t b) const;
};

/// \brief Computes the per-parent Beta priors from the summary's
/// unambiguous (singleton-characteristic) rows: Beta(1 + leaks,
/// 1 + count − leaks); Beta(1, 1) when a parent has none.
std::vector<BetaDist> UnambiguousPriors(const SinkSummary& summary);

/// log p(M_k | D_k) up to a constant, at edge probabilities `p` (one per
/// summary parent). Exposed for tests and for the EM comparison.
double JointBayesLogPosterior(const SinkSummary& summary,
                              const std::vector<BetaDist>& priors,
                              const std::vector<double>& p);

/// \brief Runs the sampler. The summary must have at least one parent.
Result<JointBayesResult> FitJointBayes(const SinkSummary& summary,
                                       const JointBayesOptions& options,
                                       Rng& rng);

}  // namespace infoflow
