#include "learn/model_trainer.h"

#include <algorithm>

#include "learn/filtered.h"
#include "learn/goyal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace infoflow {

const char* UnattributedMethodName(UnattributedMethod method) {
  switch (method) {
    case UnattributedMethod::kJointBayes:
      return "joint-bayes";
    case UnattributedMethod::kGoyal:
      return "goyal";
    case UnattributedMethod::kSaitoEm:
      return "saito-em";
    case UnattributedMethod::kFiltered:
      return "filtered";
  }
  return "unknown";
}

PointIcm UnattributedModel::ToPointIcm() const {
  return PointIcm(graph, mean);
}

PointIcm UnattributedModel::SampleGaussianIcm(Rng& rng) const {
  std::vector<double> probs(mean.size());
  for (std::size_t e = 0; e < mean.size(); ++e) {
    probs[e] = std::clamp(rng.Normal(mean[e], sd[e]), 0.0, 1.0);
  }
  return PointIcm(graph, std::move(probs));
}

Result<UnattributedModel> TrainUnattributedModel(
    std::shared_ptr<const DirectedGraph> graph,
    const UnattributedEvidence& evidence,
    const UnattributedTrainOptions& options, Rng& rng) {
  IF_CHECK(graph != nullptr);
  IF_RETURN_NOT_OK(ValidateUnattributedEvidence(*graph, evidence));
  const DirectedGraph& g = *graph;
  return TrainUnattributedFromSummaries(
      std::move(graph),
      [&g, &evidence, &options](NodeId sink) {
        obs::TraceSpan span("learn/summary_build");
        return BuildSinkSummary(g, sink, evidence, options.summary);
      },
      options, rng);
}

Result<UnattributedModel> TrainUnattributedFromSummaries(
    std::shared_ptr<const DirectedGraph> graph,
    const std::function<SinkSummary(NodeId)>& summary_for_sink,
    const UnattributedTrainOptions& options, Rng& rng) {
  IF_CHECK(graph != nullptr);

  UnattributedModel model;
  model.graph = graph;
  model.mean.assign(graph->num_edges(), options.no_evidence_mean);
  model.sd.assign(graph->num_edges(), 0.0);

  obs::TraceSpan train_span("learn/train_unattributed");
  obs::Counter& sinks_counter = obs::GetCounter("learn.sinks_trained");
  obs::Counter& edges_counter = obs::GetCounter("learn.edge_updates");
  for (NodeId sink = 0; sink < graph->num_nodes(); ++sink) {
    if (graph->InDegree(sink) == 0) continue;
    const SinkSummary summary = summary_for_sink(sink);
    if (summary.rows.empty()) continue;  // no evidence: defaults stand
    obs::TraceSpan fit_span("learn/fit_sink");
    sinks_counter.Increment();
    edges_counter.Increment(summary.parents.size());
    switch (options.method) {
      case UnattributedMethod::kJointBayes: {
        auto fit = FitJointBayes(summary, options.joint_bayes, rng);
        if (!fit.ok()) return fit.status();
        for (std::size_t j = 0; j < fit->parent_edges.size(); ++j) {
          model.mean[fit->parent_edges[j]] = fit->mean[j];
          model.sd[fit->parent_edges[j]] = fit->sd[j];
        }
        break;
      }
      case UnattributedMethod::kGoyal: {
        const GoyalResult fit = FitGoyal(summary);
        for (std::size_t j = 0; j < fit.parent_edges.size(); ++j) {
          model.mean[fit.parent_edges[j]] = fit.estimate[j];
        }
        break;
      }
      case UnattributedMethod::kSaitoEm: {
        auto runs = FitSaitoEmRestarts(summary, options.saito,
                                       options.saito_restarts, rng);
        const auto best = std::max_element(
            runs.begin(), runs.end(),
            [](const SaitoEmResult& a, const SaitoEmResult& b) {
              return a.log_likelihood < b.log_likelihood;
            });
        for (std::size_t j = 0; j < best->parent_edges.size(); ++j) {
          model.mean[best->parent_edges[j]] = best->estimate[j];
        }
        break;
      }
      case UnattributedMethod::kFiltered: {
        const FilteredResult fit = FitFiltered(summary);
        for (std::size_t j = 0; j < fit.parent_edges.size(); ++j) {
          model.mean[fit.parent_edges[j]] = fit.estimate[j];
          model.sd[fit.parent_edges[j]] = fit.posterior[j].StdDev();
        }
        break;
      }
    }
  }
  return model;
}

}  // namespace infoflow
