/// \file filtered.h
/// \brief The "filtered" baseline (§V-C): train with the attributed Beta
/// counting rule using only the objects whose attribution is unambiguous
/// (a single active parent before the sink) and *discard* all other
/// evidence. A deliberately wasteful but unbiased comparator — Fig. 7 shows
/// Goyal et al.'s heuristic can lose to it.

#pragma once

#include <vector>

#include "learn/summary.h"
#include "stats/beta_dist.h"

namespace infoflow {

/// \brief Per-parent Beta posterior from unambiguous evidence only.
struct FilteredResult {
  NodeId sink = kInvalidNode;
  std::vector<NodeId> parents;
  std::vector<EdgeId> parent_edges;
  /// Beta(1 + leaks, 1 + count − leaks) over singleton rows; Beta(1,1) for
  /// parents with no unambiguous evidence.
  std::vector<BetaDist> posterior;
  /// Posterior means (convenience; == posterior[j].Mean()).
  std::vector<double> estimate;
};

/// Runs the filtered estimator on a sink summary.
FilteredResult FitFiltered(const SinkSummary& summary);

}  // namespace infoflow
