#include "learn/saito_em.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace infoflow {

namespace {
constexpr double kEps = 1e-12;

inline double JointInfluence(const SummaryRow& row,
                             const std::vector<double>& kappa) {
  double survive = 1.0;
  for (std::size_t j = 0; j < row.mask.size(); ++j) {
    if (row.mask[j]) survive *= 1.0 - kappa[j];
  }
  return 1.0 - survive;
}
}  // namespace

double SaitoLogLikelihood(const SinkSummary& summary,
                          const std::vector<double>& kappa) {
  IF_CHECK_EQ(kappa.size(), summary.parents.size());
  double ll = 0.0;
  for (const SummaryRow& row : summary.rows) {
    const double pj = JointInfluence(row, kappa);
    const auto leaks = static_cast<double>(row.leaks);
    const auto silent = static_cast<double>(row.count - row.leaks);
    if (leaks > 0.0) {
      if (pj <= 0.0) return -std::numeric_limits<double>::infinity();
      ll += leaks * std::log(pj);
    }
    if (silent > 0.0) {
      if (pj >= 1.0) return -std::numeric_limits<double>::infinity();
      ll += silent * std::log1p(-pj);
    }
  }
  return ll;
}

SaitoEmResult FitSaitoEm(const SinkSummary& summary,
                         const SaitoEmOptions& options, Rng& rng) {
  const std::size_t k = summary.parents.size();
  SaitoEmResult result;
  result.sink = summary.sink;
  result.parents = summary.parents;
  result.parent_edges = summary.parent_edges;
  result.estimate.assign(k, 0.5);
  if (k == 0) {
    result.converged = true;
    return result;
  }
  if (options.random_init) {
    for (double& kappa : result.estimate) kappa = rng.NextDouble();
  }

  // Denominator per parent: Σ_{J∋v} n_J = |S⁺| + |S⁻| (constant over
  // iterations).
  std::vector<double> exposure(k, 0.0);
  for (const SummaryRow& row : summary.rows) {
    for (std::size_t j = 0; j < k; ++j) {
      if (row.mask[j]) exposure[j] += static_cast<double>(row.count);
    }
  }

  std::vector<double>& kappa = result.estimate;
  std::vector<double> next(k, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // E step folded into M: responsibility of v for a leak with
    // characteristic J is κ_v / P̂_J.
    std::fill(next.begin(), next.end(), 0.0);
    for (const SummaryRow& row : summary.rows) {
      if (row.leaks == 0) continue;
      const double pj = std::max(JointInfluence(row, kappa), kEps);
      const double leaks = static_cast<double>(row.leaks);
      for (std::size_t j = 0; j < k; ++j) {
        if (row.mask[j]) next[j] += leaks * kappa[j] / pj;
      }
    }
    double max_move = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      // Parents with no exposure keep their previous κ (the Appendix's
      // "otherwise" branch).
      const double updated = exposure[j] > 0.0
                                 ? std::clamp(next[j] / exposure[j], 0.0, 1.0)
                                 : kappa[j];
      max_move = std::max(max_move, std::fabs(updated - kappa[j]));
      kappa[j] = updated;
    }
    if (max_move < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.log_likelihood = SaitoLogLikelihood(summary, kappa);
  return result;
}

std::vector<SaitoEmResult> FitSaitoEmRestarts(const SinkSummary& summary,
                                              const SaitoEmOptions& options,
                                              std::size_t num_restarts,
                                              Rng& rng) {
  IF_CHECK(num_restarts > 0) << "need at least one restart";
  std::vector<SaitoEmResult> runs;
  runs.reserve(num_restarts);
  SaitoEmOptions run_options = options;
  run_options.random_init = true;
  for (std::size_t r = 0; r < num_restarts; ++r) {
    runs.push_back(FitSaitoEm(summary, run_options, rng));
  }
  return runs;
}

}  // namespace infoflow
