/// \file trace.h
/// \brief RAII trace spans recorded into per-thread ring buffers, exported
/// as Chrome `chrome://tracing` / Perfetto-compatible JSON.
///
/// A `TraceSpan` stamps a begin time on construction and pushes one
/// complete event (name, begin, duration, thread) on destruction. Events
/// land in a fixed-capacity ring buffer owned by the recording thread, so
/// a long run degrades to "most recent N spans per thread" instead of
/// unbounded memory. Tracing is off until `Tracing::Enable()`; while off, a
/// span costs one relaxed atomic load.
///
/// Span names must be string literals (or otherwise outlive the export):
/// the buffer stores the pointer, not a copy.
///
/// \code
///   obs::Tracing::Enable();
///   {
///     obs::TraceSpan span("multi_chain/estimate_flow");
///     ...work...
///   }
///   WriteFile("trace.json", obs::Tracing::ExportChromeJson());
/// \endcode
///
/// Load the file via chrome://tracing or https://ui.perfetto.dev.
///
/// `INFOFLOW_NO_METRICS` compiles the layer out: `TraceSpan` becomes an
/// empty type and `Tracing` a set of inline no-ops.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace infoflow::obs {

#ifndef INFOFLOW_NO_METRICS

/// \brief Global switch and export surface for span recording.
class Tracing {
 public:
  /// Turns recording on. `events_per_thread` caps each thread's ring buffer
  /// (oldest spans are overwritten past that). Enabling clears nothing:
  /// spans from a previous enabled period are retained until Clear().
  static void Enable(std::size_t events_per_thread = 1 << 14);

  /// Turns recording off; retained events stay exportable.
  static void Disable();

  static bool IsEnabled();

  /// Drops every retained event (all threads).
  static void Clear();

  /// Number of events dropped to ring-buffer overwrites since Clear().
  static std::uint64_t DroppedEvents();

  /// \brief All retained events as a Chrome trace JSON object
  /// (`{"traceEvents": [...]}`, "X" complete events, microsecond
  /// timestamps relative to process start, one tid per recording thread).
  /// Events carrying a nonzero query id export an `"args":{"query_id":N}`
  /// object so one query's spans form a selectable tree in the viewer.
  static std::string ExportChromeJson();

  /// Nanoseconds since the trace epoch (never 0). Pair with EmitSpan to
  /// record a span whose lifetime does not fit a C++ scope.
  static std::uint64_t NowNanos();

  /// Records a completed span on the calling thread's ring. `name` must be
  /// a string literal (the pointer is stored). No-op while disabled.
  static void EmitSpan(const char* name, std::uint64_t begin_ns,
                       std::uint64_t end_ns, std::uint64_t query_id = 0);

  /// Adopts a span exported by another process (a `--shard-procs` replica)
  /// into this process's trace under the given pid/tid. The name is copied.
  /// Imported spans survive until Clear() and export alongside local ones.
  static void ImportSpan(const std::string& name, std::uint32_t pid,
                         std::uint32_t tid, double ts_us, double dur_us,
                         std::uint64_t query_id);
};

/// \brief RAII span: records [construction, destruction) under `name`.
class TraceSpan {
 public:
  /// `name` must outlive the trace export (use a string literal).
  explicit TraceSpan(const char* name);
  /// Same, stamping the span with a query id (0 = unattributed).
  TraceSpan(const char* name, std::uint64_t query_id);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  /// 0 when tracing was disabled at construction (the destructor then
  /// records nothing).
  std::uint64_t begin_ns_;
  std::uint64_t query_id_;
};

#else  // INFOFLOW_NO_METRICS

class Tracing {
 public:
  static void Enable(std::size_t = 0) {}
  static void Disable() {}
  static bool IsEnabled() { return false; }
  static void Clear() {}
  static std::uint64_t DroppedEvents() { return 0; }
  static std::string ExportChromeJson() { return "{\"traceEvents\":[]}"; }
  static std::uint64_t NowNanos() { return 0; }
  static void EmitSpan(const char*, std::uint64_t, std::uint64_t,
                       std::uint64_t = 0) {}
  static void ImportSpan(const std::string&, std::uint32_t, std::uint32_t,
                         double, double, std::uint64_t) {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const char*, std::uint64_t) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // INFOFLOW_NO_METRICS

}  // namespace infoflow::obs
