#include "obs/trace.h"

#ifndef INFOFLOW_NO_METRICS

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace infoflow::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since the process-wide trace epoch (first use). Never 0, so
/// 0 can mean "span not recording".
std::uint64_t NowNs() {
  static const Clock::time_point epoch = Clock::now();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - epoch)
                      .count();
  return static_cast<std::uint64_t>(ns) + 1;
}

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

/// One recording thread's ring. The owning thread writes under `mutex`
/// (uncontended except during export), the exporter reads under it.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // ring once size() == capacity
  std::size_t next = 0;            // overwrite cursor
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> capacity{1 << 14};
  std::mutex registry_mutex;
  /// shared_ptr keeps buffers alive after their thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // never destroyed
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    fresh->tid = static_cast<std::uint32_t>(state.buffers.size());
    state.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void RecordEvent(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns) {
  ThreadBuffer& buffer = LocalBuffer();
  const std::size_t capacity =
      State().capacity.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() < capacity) {
    buffer.events.push_back({name, begin_ns, end_ns});
  } else if (!buffer.events.empty()) {
    buffer.events[buffer.next] = {name, begin_ns, end_ns};
    buffer.next = (buffer.next + 1) % buffer.events.size();
    ++buffer.dropped;
  }
}

}  // namespace

void Tracing::Enable(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  State().capacity.store(events_per_thread, std::memory_order_relaxed);
  NowNs();  // pin the epoch no later than the first enabled span
  State().enabled.store(true, std::memory_order_release);
}

void Tracing::Disable() {
  State().enabled.store(false, std::memory_order_release);
}

bool Tracing::IsEnabled() {
  return State().enabled.load(std::memory_order_acquire);
}

void Tracing::Clear() {
  TraceState& state = State();
  std::lock_guard<std::mutex> registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

std::uint64_t Tracing::DroppedEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> registry_lock(state.registry_mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

std::string Tracing::ExportChromeJson() {
  TraceState& state = State();
  // Copy the buffer list so per-buffer locks are not held under the
  // registry lock longer than needed.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    buffers = state.buffers;
  }
  std::ostringstream out;
  out.precision(17);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out << ",";
      first = false;
      // Span names are compile-time literals (identifier-ish); escape the
      // two JSON-significant characters anyway.
      out << "{\"name\":\"";
      for (const char* c = event.name; *c != '\0'; ++c) {
        if (*c == '"' || *c == '\\') out << '\\';
        out << *c;
      }
      out << "\",\"cat\":\"infoflow\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << buffer->tid << ",\"ts\":"
          << static_cast<double>(event.begin_ns - 1) / 1000.0 << ",\"dur\":"
          << static_cast<double>(event.end_ns - event.begin_ns) / 1000.0
          << "}";
    }
  }
  out << "]}";
  return out.str();
}

TraceSpan::TraceSpan(const char* name) : name_(name), begin_ns_(0) {
  if (Tracing::IsEnabled()) begin_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (begin_ns_ == 0) return;
  if (!Tracing::IsEnabled()) return;  // disabled mid-span: drop it
  RecordEvent(name_, begin_ns_, NowNs());
}

}  // namespace infoflow::obs

#endif  // INFOFLOW_NO_METRICS
