#include "obs/trace.h"

#ifndef INFOFLOW_NO_METRICS

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/metrics.h"

namespace infoflow::obs {
namespace {

using Clock = std::chrono::steady_clock;

/// Nanoseconds since the process-wide trace epoch (first use). Never 0, so
/// 0 can mean "span not recording".
std::uint64_t NowNs() {
  static const Clock::time_point epoch = Clock::now();
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - epoch)
                      .count();
  return static_cast<std::uint64_t>(ns) + 1;
}

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::uint64_t query_id;
};

/// A span adopted from another process (shard replica): the name is owned
/// and pid/tid/timestamps are taken verbatim from the child's export.
struct ImportedEvent {
  std::string name;
  std::uint32_t pid;
  std::uint32_t tid;
  double ts_us;
  double dur_us;
  std::uint64_t query_id;
};

/// One recording thread's ring. The owning thread writes under `mutex`
/// (uncontended except during export), the exporter reads under it.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;  // ring once size() == capacity
  std::size_t next = 0;            // overwrite cursor
  std::uint64_t dropped = 0;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::size_t> capacity{1 << 14};
  std::mutex registry_mutex;
  /// shared_ptr keeps buffers alive after their thread exits.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  /// Spans merged in from shard replicas, also under registry_mutex.
  std::vector<ImportedEvent> imported;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // never destroyed
  return *state;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    fresh->tid = static_cast<std::uint32_t>(state.buffers.size());
    state.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

void RecordEvent(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::uint64_t query_id) {
  ThreadBuffer& buffer = LocalBuffer();
  const std::size_t capacity =
      State().capacity.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() < capacity) {
    buffer.events.push_back({name, begin_ns, end_ns, query_id});
  } else if (!buffer.events.empty()) {
    buffer.events[buffer.next] = {name, begin_ns, end_ns, query_id};
    buffer.next = (buffer.next + 1) % buffer.events.size();
    ++buffer.dropped;
    // Overwrites are otherwise silent truncation of the export; surface
    // them as a counter an operator can alert on.
    static Counter& dropped_total = GetCounter("trace.dropped_spans_total");
    dropped_total.Increment();
  }
}

}  // namespace

void Tracing::Enable(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  State().capacity.store(events_per_thread, std::memory_order_relaxed);
  NowNs();  // pin the epoch no later than the first enabled span
  State().enabled.store(true, std::memory_order_release);
}

void Tracing::Disable() {
  State().enabled.store(false, std::memory_order_release);
}

bool Tracing::IsEnabled() {
  return State().enabled.load(std::memory_order_acquire);
}

void Tracing::Clear() {
  TraceState& state = State();
  std::lock_guard<std::mutex> registry_lock(state.registry_mutex);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
  state.imported.clear();
}

std::uint64_t Tracing::DroppedEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> registry_lock(state.registry_mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

namespace {

void AppendEscaped(std::ostringstream& out, const char* text) {
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c == '"' || *c == '\\') out << '\\';
    out << *c;
  }
}

}  // namespace

std::string Tracing::ExportChromeJson() {
  TraceState& state = State();
  // Copy the buffer list so per-buffer locks are not held under the
  // registry lock longer than needed.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<ImportedEvent> imported;
  {
    std::lock_guard<std::mutex> lock(state.registry_mutex);
    buffers = state.buffers;
    imported = state.imported;
  }
  std::ostringstream out;
  out.precision(17);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const TraceEvent& event : buffer->events) {
      if (!first) out << ",";
      first = false;
      // Span names are compile-time literals (identifier-ish); escape the
      // two JSON-significant characters anyway.
      out << "{\"name\":\"";
      AppendEscaped(out, event.name);
      out << "\",\"cat\":\"infoflow\",\"ph\":\"X\",\"pid\":1,\"tid\":"
          << buffer->tid << ",\"ts\":"
          << static_cast<double>(event.begin_ns - 1) / 1000.0 << ",\"dur\":"
          << static_cast<double>(event.end_ns - event.begin_ns) / 1000.0;
      if (event.query_id != 0) {
        out << ",\"args\":{\"query_id\":" << event.query_id << "}";
      }
      out << "}";
    }
  }
  for (const ImportedEvent& event : imported) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"";
    AppendEscaped(out, event.name.c_str());
    out << "\",\"cat\":\"infoflow\",\"ph\":\"X\",\"pid\":" << event.pid
        << ",\"tid\":" << event.tid << ",\"ts\":" << event.ts_us
        << ",\"dur\":" << event.dur_us;
    if (event.query_id != 0) {
      out << ",\"args\":{\"query_id\":" << event.query_id << "}";
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

std::uint64_t Tracing::NowNanos() { return NowNs(); }

void Tracing::EmitSpan(const char* name, std::uint64_t begin_ns,
                       std::uint64_t end_ns, std::uint64_t query_id) {
  if (!IsEnabled()) return;
  if (begin_ns == 0) begin_ns = 1;
  if (end_ns < begin_ns) end_ns = begin_ns;
  RecordEvent(name, begin_ns, end_ns, query_id);
}

void Tracing::ImportSpan(const std::string& name, std::uint32_t pid,
                         std::uint32_t tid, double ts_us, double dur_us,
                         std::uint64_t query_id) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.registry_mutex);
  state.imported.push_back({name, pid, tid, ts_us, dur_us, query_id});
}

TraceSpan::TraceSpan(const char* name) : TraceSpan(name, 0) {}

TraceSpan::TraceSpan(const char* name, std::uint64_t query_id)
    : name_(name), begin_ns_(0), query_id_(query_id) {
  if (Tracing::IsEnabled()) begin_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (begin_ns_ == 0) return;
  if (!Tracing::IsEnabled()) return;  // disabled mid-span: drop it
  RecordEvent(name_, begin_ns_, NowNs(), query_id_);
}

}  // namespace infoflow::obs

#endif  // INFOFLOW_NO_METRICS
