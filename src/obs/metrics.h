/// \file metrics.h
/// \brief Low-overhead, thread-safe metrics: named counters, gauges, and
/// fixed-bucket histograms behind a process-global registry.
///
/// The evaluation narrative of the paper is a runtime/accuracy trade-off
/// (Fig. 6 timing, burn-in δ and thinning δ′ tuning in §III-D); directing
/// further performance work needs visibility into acceptance rates, queue
/// depths, and per-subsystem latencies rather than wall-clock totals alone.
///
/// Design:
///  - Registration (name → handle) takes a mutex once; the returned handle
///    is stable for the registry's lifetime, so hot paths touch no locks.
///  - Counters and histograms stripe their cells across a fixed number of
///    cache-line-padded shards indexed by a per-thread slot, so concurrent
///    writers on different threads rarely contend; `Snapshot()` sums the
///    shards.
///  - Writers that already aggregate locally (e.g. a sampler counting flip
///    indices between retained samples) can publish pre-bucketed batches via
///    `Histogram::AddBatch`, paying registry traffic per *sample* instead of
///    per *step*.
///  - Defining `INFOFLOW_NO_METRICS` swaps every class for an inline no-op
///    stub, compiling the instrumentation out entirely (guard any residual
///    work, like clock reads, with `if constexpr (obs::MetricsEnabled())`).
///
/// \code
///   obs::Counter& steps = obs::GetCounter("mh.steps_total");
///   steps.Increment();
///   obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
///   WriteFile("metrics.json", snap.ToJson());
/// \endcode

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#ifndef INFOFLOW_NO_METRICS
#include <atomic>
#include <bit>
#include <mutex>
#endif

namespace infoflow::obs {

/// \brief Aggregated view of one histogram at snapshot time.
///
/// Bucket semantics: value v lands in the first bucket i with v <= bounds[i];
/// values above bounds.back() land in the final overflow bucket, so
/// `counts.size() == bounds.size() + 1`.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  /// Total observations (== sum of counts).
  std::uint64_t total = 0;
  /// Sum of the raw observed values (not bucket midpoints).
  double sum = 0.0;

  /// Mean observed value; 0 when empty.
  double Mean() const {
    return total == 0 ? 0.0 : sum / static_cast<double>(total);
  }

  /// \brief Estimated q-quantile (q in [0,1], clamped) by linear
  /// interpolation within the bucket holding the target rank. The first
  /// bucket interpolates from 0; ranks landing in the overflow bucket
  /// return `bounds.back()` (the histogram cannot see past it). 0 when
  /// empty. With log-spaced buckets (see `LogBuckets`) the relative error
  /// is bounded by the bucket ratio.
  double Quantile(double q) const;

  /// \brief Adds another snapshot's counts/sum into this one. Requires
  /// identical bounds; if `*this` is empty (no bounds) it adopts the
  /// other's shape. Mismatched bounds are ignored (merge of differently
  /// bucketed histograms is undefined). This is how per-shard or
  /// per-replica latency histograms roll up into a fleet view.
  void Merge(const HistogramSnapshot& other);
};

/// \brief Log-spaced histogram bounds covering [lo, hi] with
/// `per_decade` buckets per power of ten — the latency-histogram shape:
/// constant *relative* quantile error across orders of magnitude.
/// `lo`/`hi` are clamped to be positive and ordered; the result is
/// strictly increasing and ends at or above `hi`.
std::vector<double> LogBuckets(double lo, double hi,
                               std::size_t per_decade = 4);

/// \brief A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Whole snapshot as a JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {"bounds": [...], "counts": [...], ...}}}.
  std::string ToJson() const;

  /// Flat CSV: kind,name,field,value — one row per counter/gauge and per
  /// histogram bucket (field = "le_<bound>" / "le_inf") plus sum and count.
  std::string ToCsv() const;

  /// \brief Prometheus text exposition (version 0.0.4): `# TYPE` comment
  /// per metric, counters as `name value`, gauges likewise, histograms as
  /// cumulative `name_bucket{le="..."}` series ending in `le="+Inf"` plus
  /// `name_sum` / `name_count`. Metric names are sanitized to
  /// `[a-zA-Z_:][a-zA-Z0-9_:]*` (every other byte becomes '_').
  std::string ToPrometheus() const;
};

#ifndef INFOFLOW_NO_METRICS

/// True when the observability layer is compiled in; usable in
/// `if constexpr` to elide residual instrumentation work (clock reads,
/// local aggregation) in INFOFLOW_NO_METRICS builds.
inline constexpr bool MetricsEnabled() { return true; }

namespace internal {

/// Shard count for striped cells. Threads hash onto shards round-robin;
/// more shards than typical worker counts keeps collisions rare without
/// bloating snapshot cost.
inline constexpr std::size_t kNumShards = 16;

/// One cache line per cell so two shards never false-share.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};

/// Stable per-thread shard index in [0, kNumShards).
std::size_t ThisThreadShard();

}  // namespace internal

/// \brief Monotonic counter. Increment is one relaxed atomic add on a
/// thread-striped cell.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    cells_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent increments may or may not be included.
  std::uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();

  internal::ShardCell cells_[internal::kNumShards];
};

/// \brief Last-writer-wins double value (rates, depths, R̂, ...).
class Gauge {
 public:
  void Set(double value) {
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  // 0 is the bit pattern of +0.0, so the initial value reads as 0.0.
  std::atomic<std::uint64_t> bits_{0};
};

/// \brief Fixed-bucket histogram with thread-striped bucket cells.
class Histogram {
 public:
  /// Records one observation: O(log buckets) search plus two relaxed adds.
  void Record(double value);

  /// \brief Publishes a locally pre-aggregated batch: `counts[i]`
  /// observations in bucket i (the caller bucketed against this histogram's
  /// bounds; `num_buckets` must equal `bounds().size() + 1`) whose raw
  /// values sum to `sum`. The per-thread-aggregation fast path.
  void AddBatch(const std::uint64_t* counts, std::size_t num_buckets,
                double sum);

  const std::vector<double>& bounds() const { return bounds_; }

  /// Aggregates the shards.
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::size_t BucketOf(double value) const;

  std::vector<double> bounds_;
  std::size_t stride_;  // bounds_.size() + 1, the per-shard cell count
  /// Shard-major: cells_[shard * stride_ + bucket].
  std::vector<std::atomic<std::uint64_t>> cells_;
  /// Per-shard raw-value sums (padded by vector-of-atomics granularity;
  /// sums are updated once per Record/AddBatch, far off the critical path).
  std::unique_ptr<std::atomic<double>[]> sums_;
};

/// \brief Name → metric handle registry. Handles are stable pointers valid
/// for the registry's lifetime (metrics are never deleted, only Reset).
class MetricsRegistry {
 public:
  /// The process-global registry used by the instrumented subsystems.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named counter.
  Counter& GetCounter(std::string_view name);

  /// Finds or creates the named gauge.
  Gauge& GetGauge(std::string_view name);

  /// \brief Finds or creates the named histogram. `bounds` (strictly
  /// increasing, non-empty) applies on first registration; later callers
  /// receive the existing histogram regardless of the bounds they pass.
  Histogram& GetHistogram(std::string_view name, std::vector<double> bounds);

  /// Copies every metric's current value.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all counters/histograms and gauges, keeping registrations (and
  /// therefore outstanding handles) valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // INFOFLOW_NO_METRICS — inert inline stubs with the identical API.

inline constexpr bool MetricsEnabled() { return false; }

class Counter {
 public:
  void Increment(std::uint64_t = 1) {}
  std::uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  void Record(double) {}
  void AddBatch(const std::uint64_t*, std::size_t, double) {}
  const std::vector<double>& bounds() const {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  HistogramSnapshot Snapshot() const { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& GetCounter(std::string_view) { return counter_; }
  Gauge& GetGauge(std::string_view) { return gauge_; }
  Histogram& GetHistogram(std::string_view, std::vector<double>) {
    return histogram_;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // INFOFLOW_NO_METRICS

/// Convenience accessors against the global registry.
inline Counter& GetCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge& GetGauge(std::string_view name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram& GetHistogram(std::string_view name,
                               std::vector<double> bounds) {
  return MetricsRegistry::Global().GetHistogram(name, std::move(bounds));
}

}  // namespace infoflow::obs
