#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace infoflow::obs {

namespace {

/// Escapes a metric name for embedding in a JSON string literal.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles in JSON must not render as "inf"/"nan"; histogram bounds and
/// gauge values are finite in practice, but stay defensive.
void AppendDouble(std::ostringstream& out, double value) {
  if (std::isfinite(value)) {
    out << value;
  } else {
    out << "null";
  }
}

/// Prometheus metric names allow [a-zA-Z0-9_:] with a non-digit lead; the
/// registry's dotted names (serve.query.latency_ms.flow) map onto that by
/// replacing every other byte with '_'.
std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || (name.front() >= '0' && name.front() <= '9')) {
    out += '_';
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// Prometheus sample values must not be empty and render inf/nan as
/// +Inf/-Inf/NaN.
void AppendPrometheusDouble(std::ostringstream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    out << value;
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (total == 0 || counts.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target rank in [1, total]; walk the cumulative counts to the bucket
  // holding it, then interpolate linearly inside that bucket.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.counts.empty()) return;
  if (counts.empty() && bounds.empty()) {
    *this = other;
    return;
  }
  if (bounds != other.bounds || counts.size() != other.counts.size()) return;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
}

std::vector<double> LogBuckets(double lo, double hi, std::size_t per_decade) {
  if (!(lo > 0.0)) lo = 1e-3;
  if (!(hi > lo)) hi = lo * 10.0;
  if (per_decade == 0) per_decade = 1;
  const double ratio = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  std::vector<double> bounds;
  double edge = lo;
  bounds.push_back(edge);
  // Multiplicative stepping keeps edges exact-ish; stop one step past hi so
  // hi itself is always covered by a finite bucket.
  while (edge < hi && bounds.size() < 512) {
    edge *= ratio;
    bounds.push_back(edge);
  }
  return bounds;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::ostringstream out;
  out.precision(17);
  for (const auto& [name, value] : counters) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " ";
    AppendPrometheusDouble(out, value);
    out << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      out << pname << "_bucket{le=\"";
      if (i < hist.bounds.size()) {
        AppendPrometheusDouble(out, hist.bounds[i]);
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << "\n";
    }
    if (hist.counts.empty()) {
      out << pname << "_bucket{le=\"+Inf\"} 0\n";
    }
    out << pname << "_sum ";
    AppendPrometheusDouble(out, hist.sum);
    out << "\n";
    out << pname << "_count " << hist.total << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":";
    AppendDouble(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out << ",";
      AppendDouble(out, hist.bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << hist.counts[i];
    }
    out << "],\"total\":" << hist.total << ",\"sum\":";
    AppendDouble(out, hist.sum);
    out << ",\"mean\":";
    AppendDouble(out, hist.Mean());
    out << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out.precision(17);
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : counters) {
    out << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge," << name << ",value," << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      out << "histogram," << name << ",le_";
      if (i < hist.bounds.size()) {
        out << hist.bounds[i];
      } else {
        out << "inf";
      }
      out << "," << hist.counts[i] << "\n";
    }
    out << "histogram," << name << ",count," << hist.total << "\n";
    out << "histogram," << name << ",sum," << hist.sum << "\n";
  }
  return out.str();
}

#ifndef INFOFLOW_NO_METRICS

namespace internal {

std::size_t ThisThreadShard() {
  // Threads take round-robin slots in creation order; the slot is stable for
  // the thread's lifetime, so a thread always hits the same cells.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t shard =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

}  // namespace internal

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const internal::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 1),
      cells_(internal::kNumShards * stride_),
      sums_(new std::atomic<double>[internal::kNumShards]) {
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    sums_[s].store(0.0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketOf(double value) const {
  // First bucket i with value <= bounds_[i]; past-the-end is the overflow
  // bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Record(double value) {
  const std::size_t shard = internal::ThisThreadShard();
  cells_[shard * stride_ + BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].fetch_add(value, std::memory_order_relaxed);
}

void Histogram::AddBatch(const std::uint64_t* counts, std::size_t num_buckets,
                         double sum) {
  if (num_buckets != stride_) return;  // bounds mismatch: drop, don't corrupt
  const std::size_t base = internal::ThisThreadShard() * stride_;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    if (counts[i] != 0) {
      cells_[base + i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
  sums_[internal::ThisThreadShard()].fetch_add(sum,
                                               std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(stride_, 0);
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    for (std::size_t i = 0; i < stride_; ++i) {
      snap.counts[i] += cells_[s * stride_ + i].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[s].load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.total += c;
  return snap;
}

void Histogram::Reset() {
  for (auto& cell : cells_) cell.store(0, std::memory_order_relaxed);
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    sums_[s].store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds.push_back(1.0);  // degenerate but safe
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [name, hist] : histograms_) hist->Reset();
}

#endif  // INFOFLOW_NO_METRICS

}  // namespace infoflow::obs
