#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace infoflow::obs {

namespace {

/// Escapes a metric name for embedding in a JSON string literal.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles in JSON must not render as "inf"/"nan"; histogram bounds and
/// gauge values are finite in practice, but stay defensive.
void AppendDouble(std::ostringstream& out, double value) {
  if (std::isfinite(value)) {
    out << value;
  } else {
    out << "null";
  }
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":";
    AppendDouble(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      if (i > 0) out << ",";
      AppendDouble(out, hist.bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out << ",";
      out << hist.counts[i];
    }
    out << "],\"total\":" << hist.total << ",\"sum\":";
    AppendDouble(out, hist.sum);
    out << ",\"mean\":";
    AppendDouble(out, hist.Mean());
    out << "}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out.precision(17);
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : counters) {
    out << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    out << "gauge," << name << ",value," << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      out << "histogram," << name << ",le_";
      if (i < hist.bounds.size()) {
        out << hist.bounds[i];
      } else {
        out << "inf";
      }
      out << "," << hist.counts[i] << "\n";
    }
    out << "histogram," << name << ",count," << hist.total << "\n";
    out << "histogram," << name << ",sum," << hist.sum << "\n";
  }
  return out.str();
}

#ifndef INFOFLOW_NO_METRICS

namespace internal {

std::size_t ThisThreadShard() {
  // Threads take round-robin slots in creation order; the slot is stable for
  // the thread's lifetime, so a thread always hits the same cells.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t shard =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

}  // namespace internal

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const internal::ShardCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      stride_(bounds_.size() + 1),
      cells_(internal::kNumShards * stride_),
      sums_(new std::atomic<double>[internal::kNumShards]) {
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    sums_[s].store(0.0, std::memory_order_relaxed);
  }
}

std::size_t Histogram::BucketOf(double value) const {
  // First bucket i with value <= bounds_[i]; past-the-end is the overflow
  // bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Record(double value) {
  const std::size_t shard = internal::ThisThreadShard();
  cells_[shard * stride_ + BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].fetch_add(value, std::memory_order_relaxed);
}

void Histogram::AddBatch(const std::uint64_t* counts, std::size_t num_buckets,
                         double sum) {
  if (num_buckets != stride_) return;  // bounds mismatch: drop, don't corrupt
  const std::size_t base = internal::ThisThreadShard() * stride_;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    if (counts[i] != 0) {
      cells_[base + i].fetch_add(counts[i], std::memory_order_relaxed);
    }
  }
  sums_[internal::ThisThreadShard()].fetch_add(sum,
                                               std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(stride_, 0);
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    for (std::size_t i = 0; i < stride_; ++i) {
      snap.counts[i] += cells_[s * stride_ + i].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[s].load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : snap.counts) snap.total += c;
  return snap;
}

void Histogram::Reset() {
  for (auto& cell : cells_) cell.store(0, std::memory_order_relaxed);
  for (std::size_t s = 0; s < internal::kNumShards; ++s) {
    sums_[s].store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds.push_back(1.0);  // degenerate but safe
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [name, hist] : histograms_) hist->Reset();
}

#endif  // INFOFLOW_NO_METRICS

}  // namespace infoflow::obs
