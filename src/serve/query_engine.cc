#include "serve/query_engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "serve/query_plan.h"
#include "util/check.h"

namespace infoflow::serve {
namespace {

/// True when every condition holds in the packed row (scalar path).
bool RowSatisfies(const DirectedGraph& graph, const std::uint64_t* row,
                  const FlowConditions& conditions,
                  ReachabilityWorkspace& workspace,
                  std::vector<NodeId>& source_scratch) {
  for (const FlowConstraint& c : conditions) {
    source_scratch[0] = c.source;
    const bool flows =
        workspace.RunUntilPacked(graph, source_scratch, row, c.sink);
    if (flows != c.must_flow) return false;
  }
  return true;
}

/// The single-graph BlockOps: every block's 64 rows are answered directly
/// over the bank's plane (batch path) or its packed rows (scalar reference
/// path), one BFS workspace per pool worker.
class SingleGraphOps final : public BlockOps {
 public:
  SingleGraphOps(const DirectedGraph& graph, const BankGeneration& bank,
                 bool batch_bfs,
                 std::vector<ReachabilityWorkspace>& workspaces,
                 std::vector<BatchReachabilityWorkspace>& batch_workspaces)
      : graph_(graph),
        bank_(bank),
        batch_bfs_(batch_bfs),
        workspaces_(workspaces),
        batch_workspaces_(batch_workspaces) {}

  std::uint64_t BlockConditions(std::size_t worker, std::size_t block,
                                const FlowConditions& conditions,
                                std::uint64_t lanes) override {
    std::vector<NodeId> src(1);
    if (batch_bfs_) {
      // Each constraint's BFS runs only over the still-live lanes, so
      // every dropped row makes the remaining constraints cheaper
      // (blockwise I(x, C) of Eq. 7–8).
      const std::uint64_t* words = bank_.BlockEdgeWords(block);
      BatchReachabilityWorkspace& ws = batch_workspaces_[worker];
      for (const FlowConstraint& c : conditions) {
        if (lanes == 0) break;
        src[0] = c.source;
        const std::uint64_t reached =
            ws.RunUntil(graph_, src, words, c.sink, lanes);
        lanes = c.must_flow ? reached : lanes & ~reached;
      }
      return lanes;
    }
    ReachabilityWorkspace& ws = workspaces_[worker];
    const std::size_t row_end = std::min(bank_.num_rows(), (block + 1) * 64);
    std::uint64_t word = 0;
    for (std::size_t r = block * 64; r < row_end; ++r) {
      if ((lanes >> (r & 63) & 1) == 0) continue;
      if (RowSatisfies(graph_, bank_.Row(r), conditions, ws, src)) {
        word |= std::uint64_t{1} << (r & 63);
      }
    }
    return word;
  }

  void BlockReach(std::size_t worker, std::size_t block,
                  const std::vector<NodeId>& sources, std::uint64_t lanes,
                  const std::vector<NodeId>& sinks,
                  std::uint64_t* out) override {
    if (batch_bfs_) {
      BatchReachabilityWorkspace& ws = batch_workspaces_[worker];
      ws.Run(graph_, sources, bank_.BlockEdgeWords(block), lanes);
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        out[s] = ws.ReachedMask(sinks[s]);
      }
      return;
    }
    ReachabilityWorkspace& ws = workspaces_[worker];
    std::fill(out, out + sinks.size(), 0);
    const std::size_t row_end = std::min(bank_.num_rows(), (block + 1) * 64);
    for (std::size_t r = block * 64; r < row_end; ++r) {
      if ((lanes >> (r & 63) & 1) == 0) continue;
      const std::uint64_t bit = std::uint64_t{1} << (r & 63);
      ws.RunPacked(graph_, sources, bank_.Row(r));
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        if (ws.IsReached(sinks[s])) out[s] |= bit;
      }
    }
  }

 private:
  const DirectedGraph& graph_;
  const BankGeneration& bank_;
  const bool batch_bfs_;
  std::vector<ReachabilityWorkspace>& workspaces_;
  std::vector<BatchReachabilityWorkspace>& batch_workspaces_;
};

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kFlow:
      return "flow";
    case QueryKind::kCommunity:
      return "community";
    case QueryKind::kJoint:
      return "joint";
  }
  return "unknown";
}

Status QueryEngineOptions::Validate() const {
  if (rows_per_task == 0) {
    return Status::InvalidArgument("rows_per_task must be positive");
  }
  return Status::OK();
}

Result<QueryEngine> QueryEngine::Create(
    std::shared_ptr<const DirectedGraph> graph, QueryEngineOptions options) {
  IF_CHECK(graph != nullptr) << "null graph";
  IF_RETURN_NOT_OK(options.Validate());
  return QueryEngine(std::move(graph), options);
}

QueryEngine::QueryEngine(std::shared_ptr<const DirectedGraph> graph,
                         QueryEngineOptions options)
    : graph_(std::move(graph)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  workspaces_.reserve(pool_->size());
  batch_workspaces_.reserve(pool_->size());
  for (std::size_t t = 0; t < pool_->size(); ++t) {
    workspaces_.emplace_back(*graph_);
    batch_workspaces_.emplace_back(*graph_);
  }
}

Status QueryEngine::ValidateRequest(const QueryRequest& request) const {
  return ValidateQueryRequest(*graph_, request);
}

std::vector<QueryResult> QueryEngine::AnswerBatch(
    const BankGeneration& bank, const std::vector<QueryRequest>& requests) {
  SingleGraphOps ops(*graph_, bank, options_.use_batch_reachability,
                     workspaces_, batch_workspaces_);
  QueryPlanOptions plan;
  plan.min_conditional_rows = options_.min_conditional_rows;
  plan.rows_per_task = options_.rows_per_task;
  return RunQueryPlan(*graph_, bank, requests, plan, *pool_, ops);
}

}  // namespace infoflow::serve
