#include "serve/query_engine.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "serve/query_plan.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::serve {
namespace {

/// True when every condition holds in the packed row (scalar path).
bool RowSatisfies(const DirectedGraph& graph, const std::uint64_t* row,
                  const FlowConditions& conditions,
                  ReachabilityWorkspace& workspace,
                  std::vector<NodeId>& source_scratch) {
  for (const FlowConstraint& c : conditions) {
    source_scratch[0] = c.source;
    const bool flows =
        workspace.RunUntilPacked(graph, source_scratch, row, c.sink);
    if (flows != c.must_flow) return false;
  }
  return true;
}

/// The single-graph BlockOps: every block's 64 rows are answered directly
/// over the bank's plane (batch path) or its packed rows (scalar reference
/// path), one BFS workspace per pool worker. When the batch resolved a
/// multi-word lane width, `strip_plane` is the bank's interleaved W-word
/// plane and the Strip* hooks replay whole strips through the per-worker
/// StripWorkspaces; at 64 lanes it is null and the per-block hooks run
/// byte-for-byte as before.
class SingleGraphOps final : public BlockOps {
 public:
  SingleGraphOps(const DirectedGraph& graph, const BankGeneration& bank,
                 bool batch_bfs,
                 std::vector<ReachabilityWorkspace>& workspaces,
                 std::vector<BatchReachabilityWorkspace>& batch_workspaces,
                 const StripPlane* strip_plane,
                 std::vector<std::unique_ptr<StripWorkspace>>* strip_workspaces)
      : graph_(graph),
        bank_(bank),
        batch_bfs_(batch_bfs),
        workspaces_(workspaces),
        batch_workspaces_(batch_workspaces),
        strip_plane_(strip_plane),
        strip_workspaces_(strip_workspaces) {}

  std::uint64_t BlockConditions(std::size_t worker, std::size_t block,
                                const FlowConditions& conditions,
                                std::uint64_t lanes) override {
    std::vector<NodeId> src(1);
    if (batch_bfs_) {
      // Each constraint's BFS runs only over the still-live lanes, so
      // every dropped row makes the remaining constraints cheaper
      // (blockwise I(x, C) of Eq. 7–8).
      const std::uint64_t* words = bank_.BlockEdgeWords(block);
      BatchReachabilityWorkspace& ws = batch_workspaces_[worker];
      for (const FlowConstraint& c : conditions) {
        if (lanes == 0) break;
        src[0] = c.source;
        const std::uint64_t reached =
            ws.RunUntil(graph_, src, words, c.sink, lanes);
        lanes = c.must_flow ? reached : lanes & ~reached;
      }
      return lanes;
    }
    ReachabilityWorkspace& ws = workspaces_[worker];
    const std::size_t row_end = std::min(bank_.num_rows(), (block + 1) * 64);
    std::uint64_t word = 0;
    for (std::size_t r = block * 64; r < row_end; ++r) {
      if ((lanes >> (r & 63) & 1) == 0) continue;
      if (RowSatisfies(graph_, bank_.Row(r), conditions, ws, src)) {
        word |= std::uint64_t{1} << (r & 63);
      }
    }
    return word;
  }

  void BlockReach(std::size_t worker, std::size_t block,
                  const std::vector<NodeId>& sources, std::uint64_t lanes,
                  const std::vector<NodeId>& sinks,
                  std::uint64_t* out) override {
    if (batch_bfs_) {
      BatchReachabilityWorkspace& ws = batch_workspaces_[worker];
      ws.Run(graph_, sources, bank_.BlockEdgeWords(block), lanes);
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        out[s] = ws.ReachedMask(sinks[s]);
      }
      return;
    }
    ReachabilityWorkspace& ws = workspaces_[worker];
    std::fill(out, out + sinks.size(), 0);
    const std::size_t row_end = std::min(bank_.num_rows(), (block + 1) * 64);
    for (std::size_t r = block * 64; r < row_end; ++r) {
      if ((lanes >> (r & 63) & 1) == 0) continue;
      const std::uint64_t bit = std::uint64_t{1} << (r & 63);
      ws.RunPacked(graph_, sources, bank_.Row(r));
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        if (ws.IsReached(sinks[s])) out[s] |= bit;
      }
    }
  }

  unsigned StripWords() const override {
    return strip_plane_ != nullptr ? strip_plane_->width : 1;
  }

  void StripConditions(std::size_t worker, std::size_t strip,
                       const FlowConditions& conditions,
                       std::uint64_t* lanes) override {
    if (strip_plane_ == nullptr) {
      BlockOps::StripConditions(worker, strip, conditions, lanes);
      return;
    }
    const unsigned wn = strip_plane_->width;
    StripWorkspace& ws = *(*strip_workspaces_)[worker];
    std::vector<NodeId> src(1);
    std::uint64_t reached[kMaxStripWords];
    for (const FlowConstraint& c : conditions) {
      std::uint64_t live = 0;
      for (unsigned w = 0; w < wn; ++w) live |= lanes[w];
      if (live == 0) break;
      src[0] = c.source;
      ws.RunUntil(graph_, src, strip_plane_->StripWords(strip), c.sink,
                  lanes, reached);
      for (unsigned w = 0; w < wn; ++w) {
        lanes[w] = c.must_flow ? reached[w] : lanes[w] & ~reached[w];
      }
    }
  }

  void StripReach(std::size_t worker, std::size_t strip,
                  const std::vector<NodeId>& sources,
                  const std::uint64_t* lanes, const std::vector<NodeId>& sinks,
                  std::uint64_t* out) override {
    if (strip_plane_ == nullptr) {
      BlockOps::StripReach(worker, strip, sources, lanes, sinks, out);
      return;
    }
    const unsigned wn = strip_plane_->width;
    StripWorkspace& ws = *(*strip_workspaces_)[worker];
    ws.Run(graph_, sources, strip_plane_->StripWords(strip), lanes);
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      const std::uint64_t* mask = ws.ReachedMask(sinks[s]);
      for (unsigned w = 0; w < wn; ++w) out[s * wn + w] = mask[w];
    }
  }

 private:
  const DirectedGraph& graph_;
  const BankGeneration& bank_;
  const bool batch_bfs_;
  std::vector<ReachabilityWorkspace>& workspaces_;
  std::vector<BatchReachabilityWorkspace>& batch_workspaces_;
  const StripPlane* strip_plane_;
  std::vector<std::unique_ptr<StripWorkspace>>* strip_workspaces_;
};

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kFlow:
      return "flow";
    case QueryKind::kCommunity:
      return "community";
    case QueryKind::kJoint:
      return "joint";
  }
  return "unknown";
}

const char* QueryBackendName(QueryBackend backend) {
  switch (backend) {
    case QueryBackend::kAuto:
      return "auto";
    case QueryBackend::kAnalytic:
      return "analytic";
    case QueryBackend::kBank:
      return "bank";
  }
  return "unknown";
}

Result<QueryBackend> ParseQueryBackend(std::string_view name) {
  if (name == "auto") return QueryBackend::kAuto;
  if (name == "analytic") return QueryBackend::kAnalytic;
  if (name == "bank") return QueryBackend::kBank;
  return Status::InvalidArgument("unknown backend \"", std::string(name),
                                 "\"; expected auto, analytic, or bank");
}

bool BackendDispatcher::TryAnalytic(const BankGeneration& bank,
                                    const QueryRequest& request,
                                    QueryBackend backend,
                                    QueryResult& result) const {
  const bool explicit_analytic = backend == QueryBackend::kAnalytic;
  // Eq. 7–8 conditioning and joint indicators are row filters by
  // construction — only the bank can answer them. Under kAuto they route
  // silently; an explicit analytic ask fails descriptively.
  if (request.kind == QueryKind::kJoint || !request.given.empty()) {
    if (!explicit_analytic) return false;
    result.status = Status::FailedPrecondition(
        "the analytic backend answers unconditional flow/community queries "
        "only; ",
        request.kind == QueryKind::kJoint
            ? "joint queries are"
            : "conditioning (Eq. 7-8) is",
        " defined as a filter over retained rows -- use the bank backend");
    result.backend = QueryBackend::kAnalytic;
    return true;
  }
  const PointIcm* model = bank.model();
  if (model == nullptr) {
    if (!explicit_analytic) return false;
    result.status = Status::FailedPrecondition(
        "generation ", bank.id(),
        " carries no model snapshot; the analytic backend needs the edge "
        "probabilities the rows were drawn from");
    result.backend = QueryBackend::kAnalytic;
    return true;
  }
  WallTimer timer;
  obs::TraceSpan span("serve/analytic", request.query_id);
  analytic::AnalyticOptions opts = options_->analytic;
  // Auto routing only trusts the exact regimes (tree / enumeration): the
  // loopy correction is approximate, so a caller who didn't ask for the
  // analytic backend by name never receives an approximate answer.
  opts.require_exact = backend == QueryBackend::kAuto;
  auto answer = analytic::ReachProbabilities(*graph_, model->probs(),
                                             request.sources, opts);
  if (!answer.ok()) {
    if (!explicit_analytic) return false;
    result.status = answer.status();
    result.backend = QueryBackend::kAnalytic;
    return true;
  }
  result.status = Status::OK();
  result.estimates.reserve(request.sinks.size());
  for (const NodeId sink : request.sinks) {
    SinkEstimate estimate;
    estimate.sink = sink;
    estimate.value = answer->probability[sink];
    // Closed-form answer: no sampling noise. MCSE 0 / R-hat 1 make the
    // diagnostics read as a perfectly converged estimator downstream.
    estimate.diagnostics.mean = estimate.value;
    result.estimates.push_back(std::move(estimate));
  }
  result.effective_rows = 0;
  result.total_rows = bank.num_rows();
  result.generation = bank.id();
  result.model_epoch = bank.model_epoch();
  result.frontier_shared = false;
  result.latency_ms = timer.Millis();
  result.backend = QueryBackend::kAnalytic;
  result.analytic_method = answer->method;
  return true;
}

std::vector<std::size_t> BackendDispatcher::Partition(
    const BankGeneration& bank, const std::vector<QueryRequest>& requests,
    std::vector<QueryResult>& results) const {
  IF_CHECK(results.size() == requests.size())
      << "results must be pre-sized to the batch";
  std::vector<std::size_t> bank_indices;
  bank_indices.reserve(requests.size());
  for (std::size_t j = 0; j < requests.size(); ++j) {
    const QueryRequest& request = requests[j];
    const QueryBackend backend =
        request.backend.value_or(options_->default_backend);
    if (backend == QueryBackend::kBank ||
        // Invalid requests take the bank path so both backends fail them
        // with the one canonical validation message.
        !ValidateQueryRequest(*graph_, request).ok() ||
        !TryAnalytic(bank, request, backend, results[j])) {
      bank_indices.push_back(j);
    }
  }
  return bank_indices;
}

void BackendDispatcher::Merge(const std::vector<std::size_t>& bank_indices,
                              std::vector<QueryResult>&& bank_results,
                              std::vector<QueryResult>& results) {
  IF_CHECK(bank_results.size() == bank_indices.size())
      << "bank results misaligned with the routed indices";
  for (std::size_t i = 0; i < bank_indices.size(); ++i) {
    results[bank_indices[i]] = std::move(bank_results[i]);
  }
  if constexpr (obs::MetricsEnabled()) {
    for (const QueryResult& result : results) {
      obs::GetCounter(std::string("serve.query.backend_total.") +
                      QueryBackendName(result.backend))
          .Increment();
    }
  }
}

Status QueryEngineOptions::Validate() const {
  if (rows_per_task == 0) {
    return Status::InvalidArgument("rows_per_task must be positive");
  }
  return Status::OK();
}

Result<QueryEngine> QueryEngine::Create(
    std::shared_ptr<const DirectedGraph> graph, QueryEngineOptions options) {
  IF_CHECK(graph != nullptr) << "null graph";
  IF_RETURN_NOT_OK(options.Validate());
  return QueryEngine(std::move(graph), options);
}

QueryEngine::QueryEngine(std::shared_ptr<const DirectedGraph> graph,
                         QueryEngineOptions options)
    : graph_(std::move(graph)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  workspaces_.reserve(pool_->size());
  batch_workspaces_.reserve(pool_->size());
  for (std::size_t t = 0; t < pool_->size(); ++t) {
    workspaces_.emplace_back(*graph_);
    batch_workspaces_.emplace_back(*graph_);
  }
  // Strip workspaces stay null until a batch resolves a multi-word width.
  strip_workspaces_.resize(pool_->size());
}

Status QueryEngine::ValidateRequest(const QueryRequest& request) const {
  return ValidateQueryRequest(*graph_, request);
}

std::vector<QueryResult> QueryEngine::AnswerBatch(
    const BankGeneration& bank, const std::vector<QueryRequest>& requests) {
  std::vector<QueryResult> results(requests.size());
  BackendDispatcher dispatcher(*graph_, options_);
  const std::vector<std::size_t> bank_indices =
      dispatcher.Partition(bank, requests, results);
  // Resolve the replay width against this generation's row count; the
  // W-word strip plane is interleaved lazily on first acquisition and
  // cached on the generation, so later batches pay nothing.
  std::shared_ptr<const StripPlane> strip_plane;
  if (options_.use_batch_reachability) {
    const unsigned strip_words =
        ResolveStripWords(options_.lanes, bank.num_rows(),
                          graph_->num_nodes(), graph_->num_edges());
    if (strip_words > 1) {
      strip_plane = bank.AcquireStripPlane(strip_words);
      for (auto& ws : strip_workspaces_) {
        if (ws == nullptr || ws->words() != strip_words) {
          ws = StripWorkspace::Create(strip_words, *graph_);
        }
      }
    }
    obs::GetGauge("reach.strip_width").Set(64.0 * strip_words);
  }
  SingleGraphOps ops(*graph_, bank, options_.use_batch_reachability,
                     workspaces_, batch_workspaces_, strip_plane.get(),
                     &strip_workspaces_);
  QueryPlanOptions plan;
  plan.min_conditional_rows = options_.min_conditional_rows;
  plan.rows_per_task = options_.rows_per_task;
  if (bank_indices.size() == requests.size()) {
    // Everything routed to the bank (the default): no subset copy.
    BackendDispatcher::Merge(bank_indices,
                             RunQueryPlan(*graph_, bank, requests, plan,
                                          *pool_, ops),
                             results);
    return results;
  }
  std::vector<QueryRequest> bank_requests;
  bank_requests.reserve(bank_indices.size());
  for (const std::size_t j : bank_indices) {
    bank_requests.push_back(requests[j]);
  }
  BackendDispatcher::Merge(bank_indices,
                           RunQueryPlan(*graph_, bank, bank_requests, plan,
                                        *pool_, ops),
                           results);
  return results;
}

}  // namespace infoflow::serve
