#include "serve/query_engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// One distinct conditioning set within a batch: its row mask is computed
/// once and shared by every query conditioning on it.
struct GivenSet {
  std::size_t key = 0;
  /// Sorted canonical copy, for order-insensitive equality.
  FlowConditions sorted;
  /// The conditions as first seen (for row evaluation; order irrelevant).
  FlowConditions conditions;
  /// mask[b] bit s = 1 iff row 64·b + s satisfies every condition. One
  /// word per bank block, bits always within the block's lane mask.
  std::vector<std::uint64_t> mask;
  std::size_t survivors = 0;
  /// Latest member deadline — the mask scan runs while any member has time.
  Clock::time_point deadline = Clock::time_point::max();
  bool expired = false;
};

/// One row scan: either a merged source frontier answering several
/// kFlow/kCommunity queries, or a single kJoint query.
struct ScanGroup {
  /// Sorted-unique source set (empty for joint groups).
  std::vector<NodeId> sources;
  /// Union of member sinks, sorted-unique (frontier groups).
  std::vector<NodeId> sinks;
  /// The joint request's flows (joint groups).
  FlowConditions flows;
  bool joint = false;
  /// Index into the batch's given-set table; SIZE_MAX → unconditional.
  std::size_t given_index = 0;
  /// Request indices answered by this scan.
  std::vector<std::size_t> members;
  Clock::time_point deadline = Clock::time_point::max();
  /// Per-sink indicator bitmaps: word [s·num_blocks + b] bit l = sink s
  /// reached in row 64·b + l (frontier groups; s indexes `sinks`). Joint
  /// groups use one bitmap: word [b] bit l = all flows hold in row 64·b+l.
  std::vector<std::uint64_t> indicators;
  bool expired = false;
};

FlowConditions SortedConditions(FlowConditions conditions) {
  std::sort(conditions.begin(), conditions.end(),
            [](const FlowConstraint& a, const FlowConstraint& b) {
              if (a.source != b.source) return a.source < b.source;
              if (a.sink != b.sink) return a.sink < b.sink;
              return a.must_flow < b.must_flow;
            });
  return conditions;
}

std::vector<NodeId> SortedUnique(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

/// True when every condition holds in the packed row (scalar path).
bool RowSatisfies(const DirectedGraph& graph, const std::uint64_t* row,
                  const FlowConditions& conditions,
                  ReachabilityWorkspace& workspace,
                  std::vector<NodeId>& source_scratch) {
  for (const FlowConstraint& c : conditions) {
    source_scratch[0] = c.source;
    const bool flows =
        workspace.RunUntilPacked(graph, source_scratch, row, c.sink);
    if (flows != c.must_flow) return false;
  }
  return true;
}

/// Lanes of `block` (restricted to `lanes`) whose rows satisfy every
/// condition: the blockwise conditional indicator I(x, C) of Eq. 7–8. Each
/// constraint's BFS runs only over the still-live lanes, so every dropped
/// row makes the remaining constraints cheaper.
std::uint64_t BlockSatisfies(const DirectedGraph& graph,
                             const BankGeneration& bank, std::size_t block,
                             const FlowConditions& conditions,
                             std::uint64_t lanes,
                             BatchReachabilityWorkspace& workspace,
                             std::vector<NodeId>& source_scratch) {
  const std::uint64_t* words = bank.BlockEdgeWords(block);
  for (const FlowConstraint& c : conditions) {
    if (lanes == 0) break;
    source_scratch[0] = c.source;
    const std::uint64_t reached =
        workspace.RunUntil(graph, source_scratch, words, c.sink, lanes);
    lanes = c.must_flow ? reached : lanes & ~reached;
  }
  return lanes;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kFlow:
      return "flow";
    case QueryKind::kCommunity:
      return "community";
    case QueryKind::kJoint:
      return "joint";
  }
  return "unknown";
}

Status QueryEngineOptions::Validate() const {
  if (rows_per_task == 0) {
    return Status::InvalidArgument("rows_per_task must be positive");
  }
  return Status::OK();
}

Result<QueryEngine> QueryEngine::Create(
    std::shared_ptr<const DirectedGraph> graph, QueryEngineOptions options) {
  IF_CHECK(graph != nullptr) << "null graph";
  IF_RETURN_NOT_OK(options.Validate());
  return QueryEngine(std::move(graph), options);
}

QueryEngine::QueryEngine(std::shared_ptr<const DirectedGraph> graph,
                         QueryEngineOptions options)
    : graph_(std::move(graph)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      metric_batches_(&obs::GetCounter("serve.query.batches_total")),
      metric_requests_(&obs::GetCounter("serve.query.requests_total")),
      metric_rows_scanned_(&obs::GetCounter("serve.query.rows_scanned_total")),
      metric_frontier_merged_(
          &obs::GetCounter("serve.query.frontier_merged_total")),
      metric_deadline_exceeded_(
          &obs::GetCounter("serve.query.deadline_exceeded_total")),
      metric_conditional_floor_(
          &obs::GetCounter("serve.query.conditional_floor_total")),
      metric_batch_size_(&obs::GetHistogram(
          "serve.query.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})),
      metric_group_size_(&obs::GetHistogram(
          "serve.query.group_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})),
      metric_latency_ms_(&obs::GetHistogram(
          "serve.query.latency_ms",
          {0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0, 5000.0})) {
  workspaces_.reserve(pool_->size());
  batch_workspaces_.reserve(pool_->size());
  for (std::size_t t = 0; t < pool_->size(); ++t) {
    workspaces_.emplace_back(*graph_);
    batch_workspaces_.emplace_back(*graph_);
  }
}

Status QueryEngine::ValidateRequest(const QueryRequest& request) const {
  const NodeId n = graph_->num_nodes();
  if (request.timeout_ms < 0.0) {
    return Status::InvalidArgument("timeout_ms must be >= 0, got ",
                                   request.timeout_ms);
  }
  IF_RETURN_NOT_OK(ValidateConditions(*graph_, request.given));
  if (request.kind == QueryKind::kJoint) {
    if (request.flows.empty()) {
      return Status::InvalidArgument("joint query needs at least one flow");
    }
    return ValidateConditions(*graph_, request.flows);
  }
  if (request.sources.empty()) {
    return Status::InvalidArgument(QueryKindName(request.kind),
                                   " query needs at least one source");
  }
  if (request.sinks.empty()) {
    return Status::InvalidArgument(QueryKindName(request.kind),
                                   " query needs at least one sink");
  }
  if (request.kind == QueryKind::kFlow && request.sinks.size() != 1) {
    return Status::InvalidArgument("flow query takes exactly one sink, got ",
                                   request.sinks.size(),
                                   " (use kind=community)");
  }
  // Out-of-range endpoints are rejected here, with a descriptive Status the
  // caller can surface — the BFS workspaces never see an unvalidated id, so
  // their internal IF_CHECKs cannot abort a release serve build on bad
  // client input.
  for (const NodeId s : request.sources) {
    if (s >= n) return Status::OutOfRange("source ", s, " >= n=", n);
  }
  for (const NodeId s : request.sinks) {
    if (s >= n) return Status::OutOfRange("sink ", s, " >= n=", n);
  }
  return Status::OK();
}

std::vector<QueryResult> QueryEngine::AnswerBatch(
    const BankGeneration& bank, const std::vector<QueryRequest>& requests) {
  obs::TraceSpan span("serve/answer_batch");
  WallTimer timer;
  const Clock::time_point entry = Clock::now();
  IF_CHECK(bank.num_edges() == graph_->num_edges())
      << "bank rows were drawn from a different graph";

  metric_batches_->Increment();
  metric_requests_->Increment(requests.size());
  metric_batch_size_->Record(static_cast<double>(requests.size()));

  const std::size_t num_rows = bank.num_rows();
  const std::size_t num_blocks = bank.num_blocks();
  const bool batch_bfs = options_.use_batch_reachability;
  std::vector<QueryResult> results(requests.size());
  std::vector<Clock::time_point> deadlines(requests.size(),
                                           Clock::time_point::max());
  // Sources are canonicalized (sorted, deduplicated) once per request, up
  // front: frontier grouping compares the canonical sets, and both BFS
  // paths receive duplicate-free source lists instead of leaning on the
  // per-run visited check to drop repeats.
  std::vector<std::vector<NodeId>> canonical_sources(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results[i].total_rows = num_rows;
    results[i].generation = bank.id();
    results[i].model_epoch = bank.model_epoch();
    results[i].status = ValidateRequest(requests[i]);
    if (results[i].status.ok() && requests[i].kind != QueryKind::kJoint) {
      canonical_sources[i] = SortedUnique(requests[i].sources);
    }
    if (requests[i].timeout_ms > 0.0) {
      deadlines[i] =
          entry + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          requests[i].timeout_ms));
    }
  }

  // --- Distinct conditioning sets: one row mask each, shared batch-wide.
  std::vector<GivenSet> given_sets;
  // SIZE_MAX sentinel: unconditional.
  constexpr std::size_t kUnconditional = static_cast<std::size_t>(-1);
  std::vector<std::size_t> given_of(requests.size(), kUnconditional);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok() || requests[i].given.empty()) continue;
    const std::size_t key = HashConditions(requests[i].given);
    FlowConditions sorted = SortedConditions(requests[i].given);
    std::size_t g = given_sets.size();
    for (std::size_t j = 0; j < given_sets.size(); ++j) {
      if (given_sets[j].key == key && given_sets[j].sorted == sorted) {
        g = j;
        break;
      }
    }
    if (g == given_sets.size()) {
      GivenSet set;
      set.key = key;
      set.sorted = std::move(sorted);
      set.conditions = requests[i].given;
      set.mask.assign(num_blocks, 0);
      set.deadline = deadlines[i];
      given_sets.push_back(std::move(set));
    } else {
      // The shared mask scan runs while *any* member still has time; a
      // member whose own deadline lapses is failed individually afterwards.
      given_sets[g].deadline = std::max(given_sets[g].deadline, deadlines[i]);
    }
    given_of[i] = g;
  }

  // Workers partition whole blocks, so mask/indicator words are never
  // shared between tasks — the scalar path writes single bits into the
  // same words the batch path fills 64 at a time.
  const std::size_t num_tasks = pool_->size();
  const auto task_range = [&](std::size_t t) {
    const std::size_t per = (num_blocks + num_tasks - 1) / num_tasks;
    const std::size_t begin = std::min(t * per, num_blocks);
    return std::pair<std::size_t, std::size_t>(
        begin, std::min(begin + per, num_blocks));
  };
  const std::size_t blocks_per_check =
      std::max<std::size_t>(1, options_.rows_per_task / 64);

  for (GivenSet& set : given_sets) {
    std::atomic<bool> expired{false};
    std::vector<std::size_t> partial(num_tasks, 0);
    ParallelFor(*pool_, num_tasks, [&](std::size_t t) {
      const auto [begin, end] = task_range(t);
      std::vector<NodeId> src(1);
      std::size_t count = 0;
      for (std::size_t b = begin; b < end; ++b) {
        if ((b - begin) % blocks_per_check == 0 &&
            (expired.load(std::memory_order_relaxed) ||
             Clock::now() > set.deadline)) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        std::uint64_t word = 0;
        if (batch_bfs) {
          word = BlockSatisfies(*graph_, bank, b, set.conditions,
                                bank.BlockLaneMask(b), batch_workspaces_[t],
                                src);
        } else {
          ReachabilityWorkspace& ws = workspaces_[t];
          const std::size_t row_end = std::min(num_rows, (b + 1) * 64);
          for (std::size_t r = b * 64; r < row_end; ++r) {
            if (RowSatisfies(*graph_, bank.Row(r), set.conditions, ws, src)) {
              word |= std::uint64_t{1} << (r & 63);
            }
          }
        }
        set.mask[b] = word;
        count += static_cast<std::size_t>(std::popcount(word));
      }
      partial[t] = count;
    });
    set.expired = expired.load();
    for (const std::size_t c : partial) set.survivors += c;
    metric_rows_scanned_->Increment(num_rows);
  }

  // --- Conditional floor and given-set deadline, per request.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok() || given_of[i] == kUnconditional) continue;
    const GivenSet& set = given_sets[given_of[i]];
    if (set.expired) {
      results[i].status = Status::DeadlineExceeded(
          "query ", requests[i].id, " exceeded its ", requests[i].timeout_ms,
          " ms deadline while filtering rows by C");
      metric_deadline_exceeded_->Increment();
      continue;
    }
    results[i].effective_rows = set.survivors;
    if (set.survivors == 0 ||
        set.survivors < options_.min_conditional_rows) {
      results[i].status = Status::FailedPrecondition(
          "conditional query ", requests[i].id, ": only ", set.survivors,
          " of ", num_rows, " bank rows satisfy the conditioning set (floor ",
          options_.min_conditional_rows,
          "); widen the bank or relax the conditions");
      metric_conditional_floor_->Increment();
    }
  }

  // --- Group surviving requests into row scans.
  std::vector<ScanGroup> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok()) continue;
    const QueryRequest& request = requests[i];
    if (request.kind == QueryKind::kJoint) {
      ScanGroup group;
      group.joint = true;
      group.flows = request.flows;
      group.given_index = given_of[i];
      group.members.push_back(i);
      group.deadline = deadlines[i];
      groups.push_back(std::move(group));
      continue;
    }
    const std::vector<NodeId>& sources = canonical_sources[i];
    std::size_t g = groups.size();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (!groups[j].joint && groups[j].sources == sources &&
          groups[j].given_index == given_of[i]) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) {
      ScanGroup group;
      group.sources = sources;
      group.given_index = given_of[i];
      group.deadline = deadlines[i];
      groups.push_back(std::move(group));
    } else {
      groups[g].deadline = std::max(groups[g].deadline, deadlines[i]);
    }
    groups[g].members.push_back(i);
    groups[g].sinks.insert(groups[g].sinks.end(), request.sinks.begin(),
                           request.sinks.end());
  }

  // --- Scan each group's rows in parallel.
  for (ScanGroup& group : groups) {
    metric_group_size_->Record(static_cast<double>(group.members.size()));
    if (group.members.size() > 1) {
      metric_frontier_merged_->Increment(group.members.size() - 1);
    }
    group.sinks = SortedUnique(group.sinks);
    const std::size_t num_sinks = group.joint ? 1 : group.sinks.size();
    group.indicators.assign(num_sinks * num_blocks, 0);
    const std::uint64_t* mask = group.given_index == kUnconditional
                                    ? nullptr
                                    : given_sets[group.given_index].mask.data();
    std::atomic<bool> expired{false};
    ParallelFor(*pool_, num_tasks, [&](std::size_t t) {
      const auto [begin, end] = task_range(t);
      std::vector<NodeId> src(1);
      for (std::size_t b = begin; b < end; ++b) {
        if ((b - begin) % blocks_per_check == 0 &&
            (expired.load(std::memory_order_relaxed) ||
             Clock::now() > group.deadline)) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        // Conditional scans only visit the surviving lanes; a block with
        // no survivors is skipped outright.
        const std::uint64_t lanes =
            mask != nullptr ? mask[b] : bank.BlockLaneMask(b);
        if (lanes == 0) continue;
        if (batch_bfs) {
          BatchReachabilityWorkspace& ws = batch_workspaces_[t];
          if (group.joint) {
            group.indicators[b] = BlockSatisfies(*graph_, bank, b,
                                                 group.flows, lanes, ws, src);
          } else {
            ws.Run(*graph_, group.sources, bank.BlockEdgeWords(b), lanes);
            for (std::size_t s = 0; s < group.sinks.size(); ++s) {
              group.indicators[s * num_blocks + b] =
                  ws.ReachedMask(group.sinks[s]);
            }
          }
        } else {
          ReachabilityWorkspace& ws = workspaces_[t];
          const std::size_t row_end = std::min(num_rows, (b + 1) * 64);
          for (std::size_t r = b * 64; r < row_end; ++r) {
            if ((lanes >> (r & 63) & 1) == 0) continue;
            const std::uint64_t bit = std::uint64_t{1} << (r & 63);
            const std::uint64_t* row = bank.Row(r);
            if (group.joint) {
              if (RowSatisfies(*graph_, row, group.flows, ws, src)) {
                group.indicators[b] |= bit;
              }
            } else {
              ws.RunPacked(*graph_, group.sources, row);
              for (std::size_t s = 0; s < group.sinks.size(); ++s) {
                if (ws.IsReached(group.sinks[s])) {
                  group.indicators[s * num_blocks + b] |= bit;
                }
              }
            }
          }
        }
      }
    });
    group.expired = expired.load();
    metric_rows_scanned_->Increment(num_rows);
  }

  // --- Assemble per-request estimates with chain diagnostics.
  const std::size_t num_chains = bank.num_chains();
  for (const ScanGroup& group : groups) {
    const std::uint64_t* mask = group.given_index == kUnconditional
                                    ? nullptr
                                    : given_sets[group.given_index].mask.data();
    const std::size_t survivors =
        mask == nullptr ? num_rows : given_sets[group.given_index].survivors;
    for (const std::size_t i : group.members) {
      const QueryRequest& request = requests[i];
      if (group.expired || Clock::now() > deadlines[i]) {
        results[i].status = Status::DeadlineExceeded(
            "query ", request.id, " exceeded its ", request.timeout_ms,
            " ms deadline");
        metric_deadline_exceeded_->Increment();
        continue;
      }
      results[i].effective_rows = survivors;
      results[i].frontier_shared = group.members.size() > 1;
      const auto estimate_column = [&](std::size_t column, NodeId sink) {
        const std::uint64_t* ind =
            group.indicators.data() + column * num_blocks;
        std::vector<std::vector<double>> chains(num_chains);
        double sum = 0.0;
        for (std::size_t r = 0; r < num_rows; ++r) {
          const std::uint64_t bit = std::uint64_t{1} << (r & 63);
          if (mask != nullptr && (mask[r >> 6] & bit) == 0) continue;
          const double draw = (ind[r >> 6] & bit) != 0 ? 1.0 : 0.0;
          sum += draw;
          chains[bank.ChainOfRow(r)].push_back(draw);
        }
        // Chains with no surviving rows carry no draws; drop them so the
        // diagnostics see only populated sequences.
        std::erase_if(chains,
                      [](const std::vector<double>& c) { return c.empty(); });
        SinkEstimate est;
        est.sink = sink;
        est.value = sum / static_cast<double>(survivors);
        est.diagnostics = ComputeChainDiagnostics(chains);
        return est;
      };
      if (group.joint) {
        results[i].estimates.push_back(
            estimate_column(0, request.flows.front().sink));
      } else {
        for (const NodeId sink : request.sinks) {
          const auto it = std::lower_bound(group.sinks.begin(),
                                           group.sinks.end(), sink);
          const std::size_t column =
              static_cast<std::size_t>(it - group.sinks.begin());
          results[i].estimates.push_back(estimate_column(column, sink));
        }
      }
    }
  }

  metric_latency_ms_->Record(timer.Millis());
  return results;
}

}  // namespace infoflow::serve
