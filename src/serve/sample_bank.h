/// \file sample_bank.h
/// \brief A shared bank of retained MH pseudo-states for amortized queries.
///
/// Answering a flow query with a fresh chain pays burn-in δ plus
/// (δ′+1)·N transitions *per query* (§III-B/D). But the retained states a
/// chain produces are samples of Pr[x | M] regardless of which flow the
/// caller later asks about — the estimator of Eq. 5 only replays
/// reachability over them. A SampleBank therefore materializes the retained
/// states of a MultiChainSampler once and lets arbitrarily many queries
/// (end-to-end, community, joint, conditional — see serve/query_engine.h)
/// reuse them, turning the per-query cost into a per-*bank* cost.
///
/// Storage is one word-packed bit row per retained state (bit e = edge e's
/// activity, layout of graph/reachability.h's RunPacked), chain-major:
/// row r belongs to chain r / rows_per_chain, preserving the per-chain
/// draw order that the convergence diagnostics (stats/convergence.h) need.
/// A 14k-edge fig6 graph packs a state into 1.75 KB — a 4096-state bank is
/// ~7 MB where the byte-per-edge PseudoState form would be ~57 MB.
///
/// Each generation additionally carries a **transposed, edge-major plane**:
/// rows are grouped into blocks of 64 and, per block, each edge stores one
/// word whose bit s is the edge's activity in the block's row s — the
/// layout graph/batch_reachability.h consumes to answer reachability for
/// 64 retained states in a single BFS pass. The plane is built at Fill
/// time by a cache-blocked 64×64 bitset transpose of the packed rows
/// (graph/bit_transpose.h) and doubles the bank's footprint (the 4096-state
/// fig6 bank goes from ~7 MB to ~14 MB) — the price of the batch query
/// path's ~order-of-magnitude speedup.
///
/// Generations: the bank hands out immutable `BankGeneration` objects by
/// shared_ptr. `Refresh()` advances the chains (burn-in is paid only once,
/// at Create) and publishes a new generation; readers holding the old one
/// are never invalidated — the swap is a pointer exchange under a mutex,
/// and the old rows are freed when the last in-flight reader drops them.
///
/// \code
///   auto bank = SampleBank::Create(model, options, /*seed=*/42);
///   std::shared_ptr<const BankGeneration> gen = bank->Acquire();
///   // ... answer many queries against *gen ...
///   bank->Refresh();            // background thread; readers unaffected
/// \endcode

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/icm.h"
#include "core/multi_chain.h"
#include "graph/reachability.h"
#include "graph/strip_plane.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace infoflow::serve {

/// \brief Sizing and chain tuning for a SampleBank.
struct BankOptions {
  /// Requested retained states per generation. Rounded up to a whole number
  /// per chain (MultiChainSampler's ⌈N/K⌉ contract), so the realized row
  /// count is num_chains·⌈num_states/num_chains⌉.
  std::size_t num_states = 4096;
  /// Chain tuning (K, threads, burn-in δ, thinning δ′).
  MultiChainOptions chain;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief One immutable, generation-tagged snapshot of bank rows.
///
/// Thread-safe by construction (all members const after fill); readers on
/// any thread may BFS over rows concurrently.
class BankGeneration {
 public:
  /// Monotonic generation id (1 for the Create fill, +1 per Refresh).
  std::uint64_t id() const { return id_; }
  /// Id of the model epoch the rows were drawn from (1 = the model the
  /// bank was created with; bumped by Rebuild on streaming model updates).
  std::uint64_t model_epoch() const { return model_epoch_; }
  /// Number of retained-state rows.
  std::size_t num_rows() const { return num_rows_; }
  /// Edge count of the model the rows were drawn from.
  std::size_t num_edges() const { return num_edges_; }
  /// 64-bit words per row: PackedRowWords(num_edges()).
  std::size_t words_per_row() const { return words_per_row_; }
  /// Number of chains the rows are striped over.
  std::size_t num_chains() const { return num_chains_; }
  /// Rows per chain (num_rows / num_chains; chains are equal-length).
  std::size_t rows_per_chain() const { return rows_per_chain_; }

  /// Packed edge-activity row `r` (words_per_row() words) — the form
  /// ReachabilityWorkspace::RunPacked consumes directly.
  const std::uint64_t* Row(std::size_t r) const {
    return words_.data() + r * words_per_row_;
  }

  /// Activity of edge `e` in row `r`.
  bool EdgeActive(std::size_t r, EdgeId e) const {
    return PackedEdgeActive(Row(r), e);
  }

  /// Number of 64-row sample blocks: ⌈num_rows / 64⌉. Block b covers rows
  /// [64·b, min(64·(b+1), num_rows)).
  std::size_t num_blocks() const { return (num_rows_ + 63) / 64; }

  /// Valid-lane mask of block `b`: bit s set iff row 64·b + s exists. All
  /// ones for every block except possibly the last (ragged tail when
  /// num_rows is not a multiple of 64).
  std::uint64_t BlockLaneMask(std::size_t b) const {
    const std::size_t rows = num_rows_ - b * 64;
    return rows >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << rows) - 1;
  }

  /// Edge-major plane of block `b`: num_edges() words, word e's bit s =
  /// edge e's activity in row 64·b + s — the form
  /// BatchReachabilityWorkspace consumes directly. Bits beyond the lane
  /// mask are zero.
  const std::uint64_t* BlockEdgeWords(std::size_t b) const {
    return edge_major_.data() + b * num_edges_;
  }

  /// \brief Strip-major plane for `width`-word strips (width ∈ {4, 8}; the
  /// 64-lane path reads BlockEdgeWords directly). Word
  /// `[(s·num_edges + e)·width + w]` is block s·width+w's word e, so one
  /// StripReachabilityWorkspace pass replays 64·width rows.
  ///
  /// Built lazily on first use by interleaving the per-block edge-major
  /// plane (a word gather — no new bit transpose) and cached per width for
  /// the generation's lifetime: the plane is immutable after publish and
  /// handed out by shared_ptr swap under an internal mutex, so every query
  /// engine sharing this generation re-uses one plane instead of
  /// re-interleaving per width choice, and readers keep their plane across
  /// concurrent Refresh generations (same RCU discipline as the generation
  /// itself). Thread-safe.
  std::shared_ptr<const StripPlane> AcquireStripPlane(unsigned width) const;

  /// The chain row `r` was drawn by (rows are chain-major).
  std::size_t ChainOfRow(std::size_t r) const { return r / rows_per_chain_; }

  /// \brief The model the rows were drawn from — the generation-consistent
  /// snapshot the analytic query backend computes against (answers from one
  /// generation always use the model that produced its rows, even while a
  /// drift rebuild is publishing a newer epoch). Never null for bank-filled
  /// generations.
  const PointIcm* model() const { return model_ptr_.get(); }

  /// Unpacks row `r` into a byte-per-edge PseudoState (tests, debugging).
  PseudoState UnpackRow(std::size_t r) const;

 private:
  friend class SampleBank;
  BankGeneration(std::uint64_t id, std::uint64_t model_epoch,
                 std::size_t num_edges, std::size_t num_chains,
                 std::size_t rows_per_chain);

  std::uint64_t id_;
  std::uint64_t model_epoch_;
  std::size_t num_edges_;
  std::size_t words_per_row_;
  std::size_t num_chains_;
  std::size_t rows_per_chain_;
  std::size_t num_rows_;
  /// Transposes words_ into edge_major_ (called once, at fill time, before
  /// the generation is published).
  void BuildEdgeMajor();

  /// The epoch's model, shared with the owning bank (see model()).
  std::shared_ptr<const PointIcm> model_ptr_;
  /// Row-major packed bits: words_[r·words_per_row + w].
  std::vector<std::uint64_t> words_;
  /// Edge-major packed bits: edge_major_[b·num_edges + e] bit s = edge e's
  /// activity in row 64·b + s.
  std::vector<std::uint64_t> edge_major_;

  /// Lazily built strip planes, slot 0 → width 4, slot 1 → width 8 (see
  /// AcquireStripPlane). The mutex lives behind unique_ptr so the
  /// generation stays movable during construction; each cached plane costs
  /// another edge_major_-sized footprint, paid only for widths served.
  mutable std::unique_ptr<std::mutex> strip_mutex_;
  mutable std::shared_ptr<const StripPlane> strip_planes_[2];
};

/// \brief Owner of the chains and the current generation.
///
/// Thread-safety: `Acquire()` and `GenerationAgeSeconds()` may be called
/// from any thread; `Refresh()` must be driven by one thread at a time (it
/// advances the stateful chains — the serve daemon dedicates a background
/// thread to it).
class SampleBank {
 public:
  /// \brief Builds the chains, pays burn-in, and fills generation 1.
  /// Unconditional by design: rows sample Pr[x | M] (Eq. 3) so conditional
  /// queries can be answered by filtering rows with I(x, C) (Eq. 7/8)
  /// instead of binding the bank to one condition set.
  static Result<SampleBank> Create(PointIcm model, BankOptions options,
                                   std::uint64_t seed);

  /// The current generation; never null, never mutated after publish.
  std::shared_ptr<const BankGeneration> Acquire() const;

  /// \brief Draws a fresh set of rows from the (already burned-in) chains
  /// and atomically publishes it as the next generation.
  void Refresh();

  /// \brief Replaces the model the rows sample from (a streamed
  /// ModelEpoch): builds fresh chains seeded with
  /// `MultiChainSampler::DeriveChainSeed(create_seed, model_epoch)` — so a
  /// daemon restarted on the same evidence re-derives the same chains —
  /// pays burn-in, and publishes the next generation tagged with
  /// `model_epoch`. In-flight readers of older generations are never
  /// blocked or invalidated. Serialized against Refresh().
  Status Rebuild(PointIcm model, std::uint64_t model_epoch);

  /// The model the current chains sample from.
  const PointIcm& model() const { return *model_; }

  /// Model-epoch id of the current chains (1 until the first Rebuild).
  std::uint64_t model_epoch() const;

  /// Seconds since the current generation was published.
  double GenerationAgeSeconds() const;

  /// The model's graph (shared with every generation's rows).
  const std::shared_ptr<const DirectedGraph>& graph_ptr() const {
    return graph_;
  }

  /// Realized rows per generation (num_chains·⌈num_states/num_chains⌉).
  std::size_t rows_per_generation() const;

 private:
  SampleBank(std::unique_ptr<MultiChainSampler> engine,
             std::shared_ptr<const DirectedGraph> graph, BankOptions options);

  /// Streams one generation's rows out of the chains (parallel across
  /// chains; each chain packs its own disjoint row range).
  std::shared_ptr<const BankGeneration> Fill(std::uint64_t id,
                                             std::uint64_t model_epoch);

  std::unique_ptr<MultiChainSampler> engine_;
  std::shared_ptr<const DirectedGraph> graph_;
  BankOptions options_;
  /// The model engine_'s chains currently target (kept for drift diffs and
  /// rebuild validation); optional only because PointIcm lacks a default
  /// constructor — set at Create, never empty afterwards.
  std::optional<PointIcm> model_;
  /// The same model as a shared snapshot, stamped onto every generation
  /// Fill publishes (guarded by engine_mutex_ like model_).
  std::shared_ptr<const PointIcm> model_shared_;
  /// The Create seed; Rebuild derives per-epoch chain seeds from it.
  std::uint64_t base_seed_ = 0;
  /// Model epoch of the current chains.
  std::uint64_t model_epoch_ = 1;
  /// Serializes chain mutation (Refresh vs Rebuild race from the serve
  /// daemon's refresh and drift-rebuild threads).
  std::unique_ptr<std::mutex> engine_mutex_;
  /// Guards current_/age_; unique_ptr keeps the bank movable (Result<T>).
  std::unique_ptr<std::mutex> mutex_;
  std::shared_ptr<const BankGeneration> current_;
  /// Restarted at each publish; read for the generation-age gauge.
  WallTimer age_;

  obs::Gauge* metric_generation_;
  obs::Gauge* metric_rows_;
  obs::Gauge* metric_age_s_;
  obs::Gauge* metric_model_epoch_;
  obs::Counter* metric_refreshes_;
  obs::Counter* metric_rebuilds_;
  obs::Histogram* metric_fill_ms_;
  obs::Histogram* metric_transpose_ms_;
};

}  // namespace infoflow::serve
