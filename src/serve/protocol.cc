#include "serve/protocol.h"

#include <atomic>
#include <cmath>
#include <utility>

namespace infoflow::serve {
namespace {

/// Reads a node id from a JSON number (must be a non-negative integer).
Result<NodeId> ParseNodeId(const JsonValue& value, const char* field) {
  if (!value.is_number()) {
    return Status::InvalidArgument("'", field, "' must be a number");
  }
  const double number = value.AsNumber();
  if (!(number >= 0) || number != std::floor(number)) {
    return Status::InvalidArgument("'", field,
                                   "' must be a non-negative integer, got ",
                                   number);
  }
  return static_cast<NodeId>(number);
}

/// Reads `field` (singular, a number) or `fields` (plural, an array) into a
/// node list; absent → empty.
Result<std::vector<NodeId>> ParseNodeList(const JsonValue& json,
                                          const char* singular,
                                          const char* plural) {
  std::vector<NodeId> nodes;
  if (const JsonValue* one = json.Find(singular)) {
    auto id = ParseNodeId(*one, singular);
    if (!id.ok()) return id.status();
    nodes.push_back(*id);
  }
  if (const JsonValue* many = json.Find(plural)) {
    if (!many->is_array()) {
      return Status::InvalidArgument("'", plural, "' must be an array");
    }
    for (const JsonValue& entry : many->AsArray()) {
      auto id = ParseNodeId(entry, plural);
      if (!id.ok()) return id.status();
      nodes.push_back(*id);
    }
  }
  return nodes;
}

/// Reads a condition-grammar string field ("0>3 4!>7"); absent → empty.
Result<FlowConditions> ParseConditionsField(const JsonValue& json,
                                            const char* field) {
  const JsonValue* value = json.Find(field);
  if (value == nullptr) return FlowConditions{};
  if (!value->is_string()) {
    return Status::InvalidArgument("'", field,
                                   "' must be a condition string like "
                                   "\"0>3 4!>7\"");
  }
  return ParseFlowConditions(value->AsString());
}

}  // namespace

bool IsIngestRequest(const JsonValue& json) {
  return json.is_object() && json.Find("ingest") != nullptr;
}

bool IsAdminRequest(const JsonValue& json) {
  return json.is_object() &&
         (json.Find("stats") != nullptr || json.Find("health") != nullptr ||
          json.Find("trace") != nullptr);
}

Result<AdminRequest> ParseAdminRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  AdminRequest request;
  if (const JsonValue* id = json.Find("id")) {
    if (!id->is_string()) {
      return Status::InvalidArgument("'id' must be a string");
    }
    request.id = id->AsString();
  }
  const JsonValue* stats = json.Find("stats");
  const JsonValue* health = json.Find("health");
  const JsonValue* trace = json.Find("trace");
  const int verbs = (stats != nullptr) + (health != nullptr) +
                    (trace != nullptr);
  if (verbs != 1) {
    return Status::InvalidArgument(
        "admin request must carry exactly one of 'stats' | 'health' | "
        "'trace'");
  }
  if (stats != nullptr) {
    request.verb = AdminRequest::Verb::kStats;
    return request;
  }
  if (health != nullptr) {
    request.verb = AdminRequest::Verb::kHealth;
    return request;
  }
  if (!trace->is_object()) {
    return Status::InvalidArgument(
        "'trace' must be an object like {\"enable\":true} or "
        "{\"export\":true}");
  }
  const JsonValue* enable = trace->Find("enable");
  const JsonValue* export_flag = trace->Find("export");
  if ((enable != nullptr) == (export_flag != nullptr)) {
    return Status::InvalidArgument(
        "'trace' takes exactly one of 'enable' (bool) or 'export' (true)");
  }
  if (export_flag != nullptr) {
    if (!export_flag->is_bool() || !export_flag->AsBool()) {
      return Status::InvalidArgument("'trace.export' must be true");
    }
    request.verb = AdminRequest::Verb::kTraceExport;
    return request;
  }
  if (!enable->is_bool()) {
    return Status::InvalidArgument("'trace.enable' must be a boolean");
  }
  request.verb = enable->AsBool() ? AdminRequest::Verb::kTraceEnable
                                  : AdminRequest::Verb::kTraceDisable;
  if (const JsonValue* capacity = trace->Find("events_per_thread")) {
    if (!capacity->is_number() || capacity->AsNumber() < 1 ||
        capacity->AsNumber() != std::floor(capacity->AsNumber())) {
      return Status::InvalidArgument(
          "'trace.events_per_thread' must be a positive integer");
    }
    request.trace_capacity = static_cast<std::size_t>(capacity->AsNumber());
  }
  return request;
}

std::string SerializeAdminError(const AdminRequest& request,
                                const Status& status) {
  JsonValue::Object response;
  response["id"] = request.id;
  response["ok"] = false;
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  response["error"] = std::move(error);
  return JsonValue(std::move(response)).Dump();
}

bool IsTopkRequest(const JsonValue& json) {
  return json.is_object() && json.Find("topk") != nullptr;
}

Result<TopkRequest> ParseTopkRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  TopkRequest request;
  if (const JsonValue* id = json.Find("id")) {
    if (!id->is_string()) {
      return Status::InvalidArgument("'id' must be a string");
    }
    request.id = id->AsString();
  }
  if (const JsonValue* query_id = json.Find("query_id")) {
    if (!query_id->is_number() || query_id->AsNumber() < 0 ||
        query_id->AsNumber() != std::floor(query_id->AsNumber())) {
      return Status::InvalidArgument(
          "'query_id' must be a non-negative integer");
    }
    request.query_id = static_cast<std::uint64_t>(query_id->AsNumber());
    request.query_id_provided = true;
  }
  const JsonValue* k = json.Find("topk");
  if (k == nullptr || !k->is_number() || k->AsNumber() < 1 ||
      k->AsNumber() != std::floor(k->AsNumber())) {
    return Status::InvalidArgument(
        "'topk' must be a positive integer (the seed-set size)");
  }
  request.k = static_cast<std::size_t>(k->AsNumber());
  auto candidates = ParseNodeList(json, "candidate", "candidates");
  if (!candidates.ok()) return candidates.status();
  request.candidates = std::move(*candidates);
  if (const JsonValue* community = json.Find("community")) {
    if (!community->is_array()) {
      return Status::InvalidArgument("'community' must be an array");
    }
    for (const JsonValue& entry : community->AsArray()) {
      auto id = ParseNodeId(entry, "community");
      if (!id.ok()) return id.status();
      request.community.push_back(*id);
    }
  }
  auto given = ParseConditionsField(json, "given");
  if (!given.ok()) return given.status();
  request.given = std::move(*given);
  return request;
}

std::string SerializeTopkResult(const TopkRequest& request,
                                const seedmax::SeedMaxResult& result) {
  JsonValue::Object response;
  response["id"] = request.id;
  // Like SerializeResult: only a client-provided query_id is echoed, so
  // responses stay byte-identical between runs whose mint counters differ.
  if (request.query_id_provided && request.query_id != 0) {
    response["query_id"] = static_cast<double>(request.query_id);
  }
  response["ok"] = true;
  response["kind"] = "topk";
  response["generation"] = static_cast<double>(result.generation);
  response["model_epoch"] = static_cast<double>(result.model_epoch);
  response["total_rows"] = static_cast<double>(result.total_rows);
  response["effective_rows"] = static_cast<double>(result.effective_rows);
  response["universe"] = static_cast<double>(result.universe);
  response["sketches"] = static_cast<double>(result.num_sketches);
  response["evaluations"] = static_cast<double>(result.evaluations);
  response["prune_hits"] = static_cast<double>(result.prune_hits);
  JsonValue::Array seeds;
  seeds.reserve(result.picks.size());
  for (const seedmax::SeedPick& pick : result.picks) {
    JsonValue::Object entry;
    entry["node"] = static_cast<double>(pick.node);
    entry["marginal_coverage"] =
        static_cast<double>(pick.marginal_coverage);
    entry["spread"] = pick.spread;
    entry["mcse"] = pick.mcse;
    seeds.push_back(std::move(entry));
  }
  response["seeds"] = std::move(seeds);
  response["spread"] = result.spread;
  response["mcse"] = result.mcse;
  return JsonValue(std::move(response)).Dump();
}

std::string SerializeTopkError(const TopkRequest& request,
                               const Status& status) {
  JsonValue::Object response;
  response["id"] = request.id;
  if (request.query_id_provided && request.query_id != 0) {
    response["query_id"] = static_cast<double>(request.query_id);
  }
  response["ok"] = false;
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  response["error"] = std::move(error);
  return JsonValue(std::move(response)).Dump();
}

std::uint64_t MintQueryId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Result<IngestRequest> ParseIngestRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  IngestRequest request;
  if (const JsonValue* id = json.Find("id")) {
    if (!id->is_string()) {
      return Status::InvalidArgument("'id' must be a string");
    }
    request.id = id->AsString();
  }
  const JsonValue* record = json.Find("ingest");
  if (record == nullptr || !record->is_string()) {
    return Status::InvalidArgument(
        "'ingest' must be an evidence record string");
  }
  request.record = record->AsString();
  return request;
}

std::string SerializeIngestAck(const IngestRequest& request,
                               std::uint64_t absorbed_total,
                               std::uint64_t epoch) {
  JsonValue::Object response;
  response["id"] = request.id;
  response["ok"] = true;
  response["ingested"] = true;
  response["absorbed_total"] = static_cast<double>(absorbed_total);
  response["epoch"] = static_cast<double>(epoch);
  return JsonValue(std::move(response)).Dump();
}

std::string SerializeIngestError(const IngestRequest& request,
                                 const Status& status) {
  JsonValue::Object response;
  response["id"] = request.id;
  response["ok"] = false;
  response["ingested"] = false;
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  response["error"] = std::move(error);
  return JsonValue(std::move(response)).Dump();
}

Result<QueryRequest> ParseRequest(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  QueryRequest request;
  if (const JsonValue* id = json.Find("id")) {
    if (!id->is_string()) {
      return Status::InvalidArgument("'id' must be a string");
    }
    request.id = id->AsString();
  }

  // An upstream router (the --shard-procs parent) stamps the query id it
  // minted into the forwarded line so replica spans join the same tree.
  if (const JsonValue* query_id = json.Find("query_id")) {
    if (!query_id->is_number() || query_id->AsNumber() < 0 ||
        query_id->AsNumber() != std::floor(query_id->AsNumber())) {
      return Status::InvalidArgument(
          "'query_id' must be a non-negative integer");
    }
    request.query_id = static_cast<std::uint64_t>(query_id->AsNumber());
    request.query_id_provided = true;
  }

  auto sources = ParseNodeList(json, "source", "sources");
  if (!sources.ok()) return sources.status();
  request.sources = std::move(*sources);
  auto sinks = ParseNodeList(json, "sink", "sinks");
  if (!sinks.ok()) return sinks.status();
  request.sinks = std::move(*sinks);

  auto flows = ParseConditionsField(json, "flows");
  if (!flows.ok()) return flows.status();
  request.flows = std::move(*flows);
  auto given = ParseConditionsField(json, "given");
  if (!given.ok()) return given.status();
  request.given = std::move(*given);

  if (const JsonValue* timeout = json.Find("timeout_ms")) {
    if (!timeout->is_number() || timeout->AsNumber() < 0) {
      return Status::InvalidArgument("'timeout_ms' must be a number >= 0");
    }
    request.timeout_ms = timeout->AsNumber();
  }

  // Backend: absent → the engine default (the daemon's --backend flag).
  if (const JsonValue* backend = json.Find("backend")) {
    if (!backend->is_string()) {
      return Status::InvalidArgument(
          "'backend' must be a string (auto | analytic | bank)");
    }
    auto parsed = ParseQueryBackend(backend->AsString());
    if (!parsed.ok()) return parsed.status();
    request.backend = *parsed;
  }

  // Kind: explicit when present, inferred from the fields otherwise.
  if (const JsonValue* kind = json.Find("kind")) {
    if (!kind->is_string()) {
      return Status::InvalidArgument("'kind' must be a string");
    }
    const std::string& name = kind->AsString();
    if (name == "flow") {
      request.kind = QueryKind::kFlow;
    } else if (name == "community") {
      request.kind = QueryKind::kCommunity;
    } else if (name == "joint") {
      request.kind = QueryKind::kJoint;
    } else {
      return Status::InvalidArgument(
          "unknown kind '", name, "' (expected flow | community | joint)");
    }
  } else if (!request.flows.empty()) {
    request.kind = QueryKind::kJoint;
  } else if (request.sinks.size() > 1) {
    request.kind = QueryKind::kCommunity;
  } else {
    request.kind = QueryKind::kFlow;
  }

  if (request.kind == QueryKind::kJoint &&
      (!request.sources.empty() || !request.sinks.empty())) {
    return Status::InvalidArgument(
        "joint queries take 'flows', not sources/sinks");
  }
  if (request.kind != QueryKind::kJoint && !request.flows.empty()) {
    return Status::InvalidArgument("'flows' is only valid with kind=joint");
  }
  return request;
}

Result<QueryRequest> ParseRequestLine(std::string_view line) {
  auto json = ParseJson(line);
  if (!json.ok()) return json.status();
  return ParseRequest(*json);
}

std::string SerializeResult(const QueryRequest& request,
                            const QueryResult& result) {
  JsonValue::Object response;
  response["id"] = request.id;
  // Only a query_id the client itself put on the wire is echoed: a
  // server-minted one is observability plumbing (trace spans, slow-query
  // log), and echoing it would break the byte-identical guarantee between
  // otherwise-identical runs whose mint counters differ.
  if (request.query_id_provided && request.query_id != 0) {
    response["query_id"] = static_cast<double>(request.query_id);
  }
  if (!result.status.ok()) {
    response["ok"] = false;
    JsonValue::Object error;
    error["code"] = StatusCodeName(result.status.code());
    error["message"] = result.status.message();
    response["error"] = std::move(error);
    return JsonValue(std::move(response)).Dump();
  }
  response["ok"] = true;
  response["kind"] = QueryKindName(request.kind);
  // Which estimator actually answered (never "auto"): "bank" for the
  // classic Eq. 5 replay, "analytic" for the sampling-free path.
  response["backend"] = QueryBackendName(result.backend);
  response["generation"] = static_cast<double>(result.generation);
  response["model_epoch"] = static_cast<double>(result.model_epoch);
  response["total_rows"] = static_cast<double>(result.total_rows);
  response["effective_rows"] = static_cast<double>(result.effective_rows);
  response["frontier_shared"] = result.frontier_shared;
  JsonValue::Array estimates;
  estimates.reserve(result.estimates.size());
  for (const SinkEstimate& est : result.estimates) {
    JsonValue::Object entry;
    entry["sink"] = static_cast<double>(est.sink);
    entry["value"] = est.value;
    entry["mcse"] = est.diagnostics.mcse;
    entry["ess"] = est.diagnostics.ess;
    entry["rhat"] = est.diagnostics.rhat;
    estimates.push_back(std::move(entry));
  }
  response["estimates"] = std::move(estimates);
  return JsonValue(std::move(response)).Dump();
}

std::string SerializeParseError(const Status& status) {
  JsonValue::Object response;
  response["id"] = JsonValue();
  response["ok"] = false;
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  response["error"] = std::move(error);
  return JsonValue(std::move(response)).Dump();
}

}  // namespace infoflow::serve
