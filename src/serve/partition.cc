#include "serve/partition.h"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <unordered_map>

#include "stats/rng.h"
#include "util/check.h"

namespace infoflow {
namespace {

/// Binary search of the ghost suffix (ascending parent ids) of a shard's
/// node_to_parent map; returns the local id or kInvalidNode.
NodeId GhostLocal(const ShardGraph& shard, NodeId parent) {
  const auto first = shard.node_to_parent.begin() + shard.num_owned;
  const auto it = std::lower_bound(first, shard.node_to_parent.end(), parent);
  if (it == shard.node_to_parent.end() || *it != parent) return kInvalidNode;
  return static_cast<NodeId>(it - shard.node_to_parent.begin());
}

}  // namespace

NodeId GraphPartition::LocalInShard(NodeId parent, std::uint32_t shard) const {
  IF_CHECK(parent < shard_of.size()) << "parent node out of range";
  IF_CHECK(shard < num_shards) << "shard out of range";
  if (shard_of[parent] == shard) return local_of[parent];
  return GhostLocal(shards[shard], parent);
}

Result<GraphPartition> PartitionGraph(const DirectedGraph& graph,
                                      std::uint32_t num_shards,
                                      std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (num_shards > n) {
    return Status::InvalidArgument("cannot cut ", n, " nodes into ",
                                   num_shards, " shards");
  }

  GraphPartition part;
  part.num_shards = num_shards;
  part.shard_of.assign(n, num_shards);  // num_shards = unassigned sentinel
  part.local_of.assign(n, kInvalidNode);

  // --- Assign nodes to shards: BFS-grown communities balanced by owned
  // edge weight. A shard owns the in-edges of its nodes (dst-ownership), so
  // weight(v) = indeg(v) + 1; the +1 spreads isolated nodes evenly.
  std::vector<std::uint64_t> weight(n);
  std::uint64_t total_weight = 0;
  for (NodeId v = 0; v < n; ++v) {
    weight[v] = static_cast<std::uint64_t>(graph.InDegree(v)) + 1;
    total_weight += weight[v];
  }
  Rng rng(seed);
  std::vector<NodeId> pool(n);  // candidate start nodes, compacted lazily
  for (NodeId v = 0; v < n; ++v) pool[v] = v;
  std::queue<NodeId> frontier;
  NodeId num_assigned = 0;
  std::uint64_t weight_assigned = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const std::uint32_t shards_left = num_shards - s;
    const std::uint64_t target =
        (total_weight - weight_assigned + shards_left - 1) / shards_left;
    // Every shard after this one still needs a node of its own.
    const NodeId assign_cap = n - (shards_left - 1);
    std::uint64_t shard_weight = 0;
    while (num_assigned < assign_cap &&
           (shard_weight == 0 || shard_weight < target)) {
      NodeId v = kInvalidNode;
      while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop();
        if (part.shard_of[u] == num_shards) {
          v = u;
          break;
        }
      }
      if (v == kInvalidNode) {
        // BFS exhausted the component (or the shard is empty): restart from
        // a seeded-random unassigned node, compacting the pool as assigned
        // nodes surface. Deterministic: same seed, same draw sequence.
        while (v == kInvalidNode) {
          const auto idx = static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(pool.size()) - 1));
          const NodeId cand = pool[idx];
          pool[idx] = pool.back();
          pool.pop_back();
          if (part.shard_of[cand] == num_shards) v = cand;
        }
      }
      part.shard_of[v] = s;
      ++num_assigned;
      shard_weight += weight[v];
      weight_assigned += weight[v];
      // Grow over the undirected adjacency: a neighbor in either direction
      // shares edges with v, so pulling it in keeps those edges intra-shard.
      for (const EdgeId e : graph.OutEdges(v)) {
        const NodeId w = graph.edge(e).dst;
        if (part.shard_of[w] == num_shards) frontier.push(w);
      }
      for (const EdgeId e : graph.InEdges(v)) {
        const NodeId w = graph.edge(e).src;
        if (part.shard_of[w] == num_shards) frontier.push(w);
      }
    }
    // Leftover frontier belongs to no shard in particular; drain it so the
    // next shard starts fresh from its own random seed node.
    while (!frontier.empty()) frontier.pop();
  }
  // The last shard may have hit its weight target with nodes left over
  // (rounding); sweep the stragglers into it.
  for (NodeId v = 0; v < n; ++v) {
    if (part.shard_of[v] == num_shards) part.shard_of[v] = num_shards - 1;
  }

  // --- Owned locals: ascending parent id within each shard.
  part.shards.resize(num_shards);
  for (NodeId v = 0; v < n; ++v) {
    ShardGraph& shard = part.shards[part.shard_of[v]];
    part.local_of[v] = shard.num_owned++;
    shard.node_to_parent.push_back(v);
  }

  // --- Cut edges and ghost sets. Ghosts per shard are collected in
  // ascending parent id (edge scan order is ascending src), deduplicated.
  std::vector<std::vector<NodeId>> ghosts(num_shards);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& edge = graph.edge(e);
    const std::uint32_t src_shard = part.shard_of[edge.src];
    const std::uint32_t dst_shard = part.shard_of[edge.dst];
    if (src_shard == dst_shard) continue;
    part.cut_edges.push_back(CutEdge{e, src_shard, dst_shard});
    std::vector<NodeId>& g = ghosts[dst_shard];
    if (g.empty() || g.back() != edge.src) g.push_back(edge.src);
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    std::sort(ghosts[s].begin(), ghosts[s].end());
    ghosts[s].erase(std::unique(ghosts[s].begin(), ghosts[s].end()),
                    ghosts[s].end());
    part.shards[s].node_to_parent.insert(part.shards[s].node_to_parent.end(),
                                         ghosts[s].begin(), ghosts[s].end());
  }

  // --- Ghost-target CSR over parent ids: which shards hold a ghost of v.
  part.ghost_first.assign(n + 1, 0);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (const NodeId v : ghosts[s]) ++part.ghost_first[v + 1];
  }
  for (NodeId v = 0; v < n; ++v) part.ghost_first[v + 1] += part.ghost_first[v];
  part.ghost_targets.resize(part.ghost_first[n]);
  part.ghost_locals.resize(part.ghost_first[n]);
  std::vector<EdgeId> fill(part.ghost_first.begin(), part.ghost_first.end());
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (NodeId i = 0; i < ghosts[s].size(); ++i) {
      const NodeId v = ghosts[s][i];
      part.ghost_targets[fill[v]] = s;
      part.ghost_locals[fill[v]] = part.shards[s].num_owned + i;
      ++fill[v];
    }
  }

  // --- Build each shard graph: all parent edges whose dst is owned, over
  // owned + ghost locals. GraphBuilder re-sorts edges lexicographically by
  // local ids; edge_to_parent is recovered afterwards through the parent's
  // FindEdge, so the map matches the *built* edge order.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardGraph& shard = part.shards[s];
    GraphBuilder builder(static_cast<NodeId>(shard.node_to_parent.size()));
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const Edge& edge = graph.edge(e);
      if (part.shard_of[edge.dst] != s) continue;
      const NodeId lsrc = part.shard_of[edge.src] == s
                              ? part.local_of[edge.src]
                              : GhostLocal(shard, edge.src);
      IF_CHECK(lsrc != kInvalidNode) << "cut-edge source has no ghost";
      Status status = builder.AddEdge(lsrc, part.local_of[edge.dst]);
      if (!status.ok()) return status;
    }
    shard.graph = std::move(builder).Build();
    shard.edge_to_parent.resize(shard.graph.num_edges());
    for (EdgeId le = 0; le < shard.graph.num_edges(); ++le) {
      const Edge& ledge = shard.graph.edge(le);
      const EdgeId pe = graph.FindEdge(shard.node_to_parent[ledge.src],
                                       shard.node_to_parent[ledge.dst]);
      IF_CHECK(pe != kInvalidEdge) << "shard edge missing in parent";
      shard.edge_to_parent[le] = pe;
    }
  }
  return part;
}

Status ValidatePartition(const DirectedGraph& graph,
                         const GraphPartition& partition) {
  const NodeId n = graph.num_nodes();
  if (partition.num_shards == 0 ||
      partition.shards.size() != partition.num_shards) {
    return Status::Internal("shard count mismatch");
  }
  if (partition.shard_of.size() != n || partition.local_of.size() != n) {
    return Status::Internal("node map size mismatch");
  }
  // Every node owned exactly once, with a consistent local id.
  std::vector<NodeId> owned_count(partition.num_shards, 0);
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t s = partition.shard_of[v];
    if (s >= partition.num_shards) {
      return Status::Internal("node ", v, " assigned to invalid shard ", s);
    }
    const ShardGraph& shard = partition.shards[s];
    const NodeId local = partition.local_of[v];
    if (local >= shard.num_owned || shard.node_to_parent[local] != v) {
      return Status::Internal("node ", v, " local id inconsistent");
    }
    ++owned_count[s];
  }
  for (std::uint32_t s = 0; s < partition.num_shards; ++s) {
    if (owned_count[s] != partition.shards[s].num_owned) {
      return Status::Internal("shard ", s, " owned count mismatch");
    }
    if (owned_count[s] == 0) return Status::Internal("shard ", s, " empty");
  }
  // Every parent edge in exactly one shard graph — the dst owner's — and
  // every cut edge in the cut table exactly once.
  std::vector<std::uint8_t> edge_seen(graph.num_edges(), 0);
  for (std::uint32_t s = 0; s < partition.num_shards; ++s) {
    const ShardGraph& shard = partition.shards[s];
    if (shard.edge_to_parent.size() != shard.graph.num_edges()) {
      return Status::Internal("shard ", s, " edge map size mismatch");
    }
    for (EdgeId le = 0; le < shard.graph.num_edges(); ++le) {
      const EdgeId pe = shard.edge_to_parent[le];
      if (pe >= graph.num_edges()) {
        return Status::Internal("shard ", s, " maps to bad parent edge");
      }
      if (edge_seen[pe]++ != 0) {
        return Status::Internal("parent edge ", pe, " in two shards");
      }
      const Edge& ledge = shard.graph.edge(le);
      const Edge& pedge = graph.edge(pe);
      if (shard.node_to_parent[ledge.src] != pedge.src ||
          shard.node_to_parent[ledge.dst] != pedge.dst ||
          partition.shard_of[pedge.dst] != s) {
        return Status::Internal("parent edge ", pe, " misplaced in shard ", s);
      }
    }
  }
  std::vector<std::uint8_t> cut_seen(graph.num_edges(), 0);
  for (const CutEdge& cut : partition.cut_edges) {
    const Edge& pedge = graph.edge(cut.parent_edge);
    if (partition.shard_of[pedge.src] != cut.src_shard ||
        partition.shard_of[pedge.dst] != cut.dst_shard ||
        cut.src_shard == cut.dst_shard || cut_seen[cut.parent_edge]++ != 0) {
      return Status::Internal("cut table entry for edge ", cut.parent_edge,
                              " inconsistent");
    }
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const Edge& pedge = graph.edge(e);
    const bool is_cut =
        partition.shard_of[pedge.src] != partition.shard_of[pedge.dst];
    if (edge_seen[e] != 1) {
      return Status::Internal("parent edge ", e, " not covered");
    }
    if (cut_seen[e] != (is_cut ? 1 : 0)) {
      return Status::Internal("cut table misses or over-counts edge ", e);
    }
  }
  // Ghost CSR agrees with the shard graphs' ghost suffixes.
  if (partition.ghost_first.size() != n + 1 ||
      partition.ghost_targets.size() != partition.ghost_first[n] ||
      partition.ghost_locals.size() != partition.ghost_first[n]) {
    return Status::Internal("ghost CSR size mismatch");
  }
  for (NodeId v = 0; v < n; ++v) {
    for (EdgeId i = partition.ghost_first[v]; i < partition.ghost_first[v + 1];
         ++i) {
      const std::uint32_t s = partition.ghost_targets[i];
      if (s >= partition.num_shards ||
          partition.LocalInShard(v, s) == kInvalidNode ||
          partition.LocalInShard(v, s) < partition.shards[s].num_owned ||
          partition.ghost_locals[i] != partition.LocalInShard(v, s)) {
        return Status::Internal("ghost target list for node ", v, " bad");
      }
    }
  }
  // And conversely every ghost is listed for its parent node.
  for (std::uint32_t s = 0; s < partition.num_shards; ++s) {
    const ShardGraph& shard = partition.shards[s];
    for (NodeId l = shard.num_owned; l < shard.node_to_parent.size(); ++l) {
      const NodeId v = shard.node_to_parent[l];
      bool listed = false;
      for (EdgeId i = partition.ghost_first[v];
           i < partition.ghost_first[v + 1] && !listed; ++i) {
        listed = partition.ghost_targets[i] == s;
      }
      if (!listed) {
        return Status::Internal("ghost of node ", v, " in shard ", s,
                                " missing from CSR");
      }
    }
  }
  return Status::OK();
}

}  // namespace infoflow
