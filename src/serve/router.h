/// \file router.h
/// \brief The serve tier's routing layer: split query work across shards
/// and merge the answers.
///
/// Two routers live here. **ShardedQueryEngine** is the in-process one: it
/// runs the shared batch skeleton (serve/query_plan.h) with per-block ops
/// that propagate reached masks inside every shard's local graph and hand
/// new lanes across shard boundaries at cut edges — each owned node that
/// gains lanes delivers its mask to its ghost copies (partition.h's
/// ghost-target CSR), and the per-shard BFS continues from exactly that
/// delta (BatchReachabilityWorkspace's incremental Seed/Propagate) until no
/// shard has pending work. At the fixpoint every node's owner mask equals
/// the whole-graph BFS mask, so estimates, effective_rows and chain
/// diagnostics are **bit-identical** to the single engine — with N=1 the
/// loop degenerates to one Propagate and no exchange.
///
/// **ProcessRouter** is the shared-nothing variant: each shard is a child
/// process running a full replica (same seed → same bank rows → identical
/// answers) behind the unchanged NDJSON protocol; the router round-robins
/// request lines across children, reassembles responses in input order,
/// and turns a dead or stalled child into descriptive per-query error
/// lines instead of a hang.

#pragma once

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/batch_reachability.h"
#include "graph/graph.h"
#include "graph/strip_reachability.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "serve/shard_engine.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoflow::serve {

/// \brief Answers query batches by per-shard bit-parallel replay with
/// cut-edge frontier exchange. Drop-in for QueryEngine::AnswerBatch.
///
/// Thread-safety: like QueryEngine, one thread drives an instance at a
/// time (per-worker scratch); the ShardSet is shared and thread-safe.
class ShardedQueryEngine {
 public:
  /// `graph` is the parent graph the partition was cut from. The engine
  /// always uses batch (bit-parallel) reachability;
  /// `options.use_batch_reachability` is ignored.
  static Result<ShardedQueryEngine> Create(
      std::shared_ptr<const DirectedGraph> graph,
      std::shared_ptr<ShardSet> shards, QueryEngineOptions options);

  /// See QueryEngine::AnswerBatch — same contract, same results bit for
  /// bit (the differential suite in tests/test_shard.cc holds us to it).
  std::vector<QueryResult> AnswerBatch(
      const BankGeneration& bank, const std::vector<QueryRequest>& requests);

  std::uint32_t num_shards() const { return shards_->num_shards(); }
  std::size_t num_threads() const { return pool_->size(); }
  const ShardSet& shard_set() const { return *shards_; }

 private:
  ShardedQueryEngine(std::shared_ptr<const DirectedGraph> graph,
                     std::shared_ptr<ShardSet> shards,
                     QueryEngineOptions options);

  std::shared_ptr<const DirectedGraph> graph_;
  std::shared_ptr<ShardSet> shards_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// scratch_[worker][shard]: one bit-parallel workspace per shard per pool
  /// worker (workers partition blocks, shards exchange within a block).
  std::vector<std::vector<BatchReachabilityWorkspace>> scratch_;
  /// strip_scratch_[worker][shard]: multi-word strip workspaces for batches
  /// that resolve 256/512 lanes — the cut-edge exchange then hands W-word
  /// lane spans across shard boundaries. Lazily created at the resolved
  /// width, recreated only when a later batch resolves a different width.
  std::vector<std::vector<std::unique_ptr<StripWorkspace>>> strip_scratch_;
};

/// \brief Round-robin NDJSON fan-out over shard child processes.
///
/// The router owns nothing about queries: it forwards raw request lines to
/// children (full replicas listening on the fds handed in), reads one
/// response line per request line, and reassembles them in input order.
/// Children that die (EOF/write error) or stall past the per-batch
/// deadline get their in-flight lines answered with descriptive error
/// responses and are excluded from later batches.
class ProcessRouter {
 public:
  struct Options {
    /// Max request lines folded into one fan-out round.
    std::size_t max_batch = 64;
    /// Per-batch child response deadline; 0 → wait forever.
    double child_timeout_ms = 0.0;
    /// When set, Serve treats `*interrupt != 0` as EOF on its input (the
    /// CLI's SIGTERM/SIGINT flag) so a signalled router still writes its
    /// shutdown-time observability artifacts.
    const volatile std::sig_atomic_t* interrupt = nullptr;
  };

  /// `child_fds` are connected stream sockets (or pipe pairs) to shard
  /// children speaking the serve NDJSON protocol. The router closes them
  /// on destruction.
  ProcessRouter(std::vector<int> child_fds, Options options);
  ~ProcessRouter();
  ProcessRouter(const ProcessRouter&) = delete;
  ProcessRouter& operator=(const ProcessRouter&) = delete;

  /// \brief Bridges `in_fd` to `out_fd` through the children until EOF on
  /// `in_fd`: greedy-batches request lines (like Server::ServeFd), fans
  /// each batch out round-robin, merges responses in input order. Fails
  /// only when no child is left alive or the output fd breaks.
  Status Serve(int in_fd, int out_fd);

  /// \brief One fan-out round: routes `lines` across the live children and
  /// returns exactly one response line per input line, in order. Dead or
  /// stalled children yield serialized error responses echoing each
  /// affected line's request id. Exposed for the fault-path tests.
  ///
  /// Observability hooks: query lines arriving without a `query_id` get
  /// one minted and injected before forwarding, so replica-side spans join
  /// the router's trace tree; admin verbs ({"stats"}, {"health"},
  /// {"trace":...}) are answered by the router itself — `health` reports
  /// per-replica liveness (dead children stay listed, alive:false), and
  /// trace enable/disable/export fan out to every live replica.
  std::vector<std::string> RouteBatch(const std::vector<std::string>& lines);

  /// \brief Sends one line to every live child and reads one response line
  /// each, positionally (dead or failing children yield ""). Used for
  /// trace fan-out; exposed for tests.
  std::vector<std::string> Broadcast(const std::string& line);

  /// \brief Chrome-trace JSON of the router process's spans merged with
  /// every live replica's exported spans (replica k's events re-homed to
  /// pid k+2). Answers {"trace":{"export":true}} and the CLI's
  /// shutdown-time --trace-json artifact.
  std::string MergedTraceExport();

  /// Children still considered alive.
  std::size_t num_live_children() const;

 private:
  struct Child;

  /// Marks child k dead and bumps both the aggregate and the per-replica
  /// failure counters (`router.child_failures_total` and
  /// `router.child_failures_total.replica<k>`).
  void MarkChildDead(std::size_t k);

  /// Answers one admin verb line locally (see RouteBatch).
  std::string HandleAdminLine(const std::string& line);

  std::vector<Child> children_;
  Options options_;
  std::size_t next_child_ = 0;
};

}  // namespace infoflow::serve
