/// \file partition.h
/// \brief Greedy edge-balanced graph partitioner for the sharded serve tier.
///
/// The serve path replays Eq. 5 reachability over the whole graph for every
/// query; to spread that work over shards the graph is split into K node
/// communities. Partitioning is **dst-owned with ghost sources**: every
/// parent edge lives in exactly one shard — the shard that owns its
/// destination — and a shard's local graph contains its owned nodes plus
/// *ghost* copies of foreign nodes that feed a cut edge. Because a node's
/// in-edges are all materialized in its owner shard, the owner's reached
/// mask for that node is authoritative; the router only has to hand owner
/// masks to ghost copies (one exchange per boundary node, not per cut
/// edge) and every edge is relaxed exactly once per fixpoint round.
///
/// Communities are grown by BFS over the undirected adjacency from
/// seeded-random start nodes, balanced by edge weight (in-degree, since a
/// shard's work is proportional to the edges it owns). The result is fully
/// deterministic under a fixed seed, which the differential shard-vs-single
/// tests rely on.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace infoflow {

/// \brief One shard's local graph plus the correspondence to the parent.
struct ShardGraph {
  /// Local graph: owned nodes first (local ids [0, num_owned), ascending
  /// parent id), then ghost copies of foreign cut-edge sources (ascending
  /// parent id). Edges are exactly the parent edges whose dst is owned.
  DirectedGraph graph;
  /// Local node id -> parent node id (owned prefix + ghost suffix).
  std::vector<NodeId> node_to_parent;
  /// Local edge id -> parent edge id. The shard plane is gathered through
  /// this map from the parent bank's edge-major plane.
  std::vector<EdgeId> edge_to_parent;
  /// Number of owned (non-ghost) locals; locals >= num_owned are ghosts.
  NodeId num_owned = 0;
};

/// \brief One cut edge: a parent edge whose src and dst live in different
/// shards. Kept for observability and the partition property tests; the
/// router itself exchanges per-node masks via GraphPartition::ghost_targets.
struct CutEdge {
  EdgeId parent_edge = kInvalidEdge;
  std::uint32_t src_shard = 0;
  std::uint32_t dst_shard = 0;
};

/// \brief A K-way partition of a parent graph into ShardGraphs.
struct GraphPartition {
  std::uint32_t num_shards = 0;
  /// Parent node id -> owning shard.
  std::vector<std::uint32_t> shard_of;
  /// Parent node id -> local id within its owning shard.
  std::vector<NodeId> local_of;
  /// Per-shard local graphs with ghost copies of cut-edge sources.
  std::vector<ShardGraph> shards;
  /// All parent edges crossing a shard boundary.
  std::vector<CutEdge> cut_edges;
  /// CSR over parent node ids: ghost_targets[ghost_first[v] ..
  /// ghost_first[v+1]) lists the shards holding a ghost copy of v, and
  /// ghost_locals[i] is the ghost's local id inside ghost_targets[i]. After
  /// a shard's propagation round the router walks its touched *owned* nodes
  /// and delivers new lanes to each listed ghost.
  std::vector<EdgeId> ghost_first;
  std::vector<std::uint32_t> ghost_targets;
  std::vector<NodeId> ghost_locals;

  /// Local id of parent node v inside shard s: the owned local when s owns
  /// v, the ghost local when s holds a ghost of v, kInvalidNode otherwise.
  NodeId LocalInShard(NodeId parent, std::uint32_t shard) const;
};

/// \brief Partitions `graph` into `num_shards` edge-balanced communities.
///
/// Deterministic under `seed`. num_shards == 1 yields the identity
/// partition (one shard, no ghosts, empty cut table) — the N=1 degeneracy
/// the serve tier's single-engine fallback relies on. Fails when
/// num_shards is 0 or exceeds the node count.
Result<GraphPartition> PartitionGraph(const DirectedGraph& graph,
                                      std::uint32_t num_shards,
                                      std::uint64_t seed);

/// \brief Structural self-check: every node in exactly one shard, every
/// parent edge in exactly one shard graph (dst-owned), ghosts consistent
/// with the cut table. Returns the first violation found.
Status ValidatePartition(const DirectedGraph& graph,
                         const GraphPartition& partition);

}  // namespace infoflow
