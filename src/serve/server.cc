#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <optional>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/trace.h"
#include "serve/partition.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/transport.h"
#include "util/check.h"
#include "util/json.h"
#include "util/timer.h"

namespace infoflow::serve {

struct Server::Background {
  std::atomic<bool> stopping{false};
  std::atomic<bool> started{false};
  int listen_fd = -1;
  std::thread accept_thread;
  std::thread refresh_thread;
  std::mutex connections_mutex;
  std::vector<std::thread> connections;

  /// Drift-rebuild worker state: the epoch callback queues the newest
  /// epoch (later epochs supersede queued ones — rebuilding onto stale
  /// models is wasted burn-in); the worker applies it off-thread.
  std::thread rebuild_thread;
  std::mutex rebuild_mutex;
  std::condition_variable rebuild_cv;
  std::shared_ptr<const stream::ModelEpoch> pending_epoch;
  /// Rebuild-worker shutdown is signalled separately from `stopping`:
  /// Stop() raises it only after the feed, listener, and every connection
  /// thread have been quiesced, so an epoch published by a late ingest
  /// line is still drained (the guarantee Stop() documents).
  bool rebuild_stop = false;

  /// Periodic metrics-snapshot writer (the CLI's --stats-every).
  std::thread stats_thread;
  /// Slow-query log sink, opened lazily on the first slow query so tests
  /// (and stdio daemons) need no Start() for it; connections share it.
  std::mutex slow_mutex;
  std::ofstream slow_out;
  bool slow_open_failed = false;
};

Status ServerOptions::Validate() const {
  if (max_batch == 0) {
    return Status::InvalidArgument("max_batch must be positive");
  }
  if (refresh_interval_ms < 0.0) {
    return Status::InvalidArgument("refresh_interval_ms must be >= 0");
  }
  if (drift_threshold < 0.0) {
    return Status::InvalidArgument("drift_threshold must be >= 0");
  }
  if (!socket_path.empty() && socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path too long: ", socket_path);
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (stats_interval_ms < 0.0) {
    return Status::InvalidArgument("stats_interval_ms must be >= 0");
  }
  if (stats_interval_ms > 0.0 && stats_path.empty()) {
    return Status::InvalidArgument(
        "stats_interval_ms needs stats_path (the snapshot destination)");
  }
  if (slow_query_ms < 0.0) {
    return Status::InvalidArgument("slow_query_ms must be >= 0");
  }
  if (slow_query_ms > 0.0 && slow_query_path.empty()) {
    return Status::InvalidArgument(
        "slow_query_ms needs slow_query_path (the NDJSON log destination)");
  }
  return engine.Validate();
}

Result<Server> Server::Create(SampleBank bank, ServerOptions options) {
  IF_RETURN_NOT_OK(options.Validate());
  IF_RETURN_NOT_OK(options.engine.Validate());
  Server server(std::move(bank), std::move(options));
  if (server.options_.num_shards > 1) {
    auto partition = PartitionGraph(
        *server.bank_.graph_ptr(),
        static_cast<std::uint32_t>(server.options_.num_shards),
        server.options_.partition_seed);
    IF_RETURN_NOT_OK(partition.status());
    server.shard_set_ = std::make_shared<ShardSet>(
        std::make_shared<const GraphPartition>(std::move(*partition)));
    // Warm every shard's view of the boot generation, mirroring the
    // refresh/rebuild fan-out — the first batch should not pay K gathers.
    server.shard_set_->Prime(*server.bank_.Acquire());
  }
  // The reversed view is cheap (one transpose); sketch sets are built
  // lazily on the first {"topk":...} request and re-primed on publishes.
  server.rr_index_ =
      std::make_shared<seedmax::RrIndex>(server.bank_.graph_ptr());
  return server;
}

Server::Server(SampleBank bank, ServerOptions options)
    : bank_(std::move(bank)),
      options_(std::move(options)),
      background_(std::make_unique<Background>()),
      metric_batches_(&obs::GetCounter("serve.server.batches_total")),
      metric_lines_(&obs::GetCounter("serve.server.lines_total")),
      metric_connections_(&obs::GetCounter("serve.server.connections_total")),
      metric_ingest_lines_(&obs::GetCounter("serve.server.ingest_lines_total")),
      metric_rebuilds_triggered_(
          &obs::GetCounter("serve.server.rebuilds_triggered_total")),
      metric_admin_requests_(
          &obs::GetCounter("serve.server.admin_requests_total")),
      metric_topk_requests_(
          &obs::GetCounter("serve.server.topk_requests_total")),
      metric_slow_queries_(&obs::GetCounter("serve.slow_queries_total")),
      metric_qps_(&obs::GetGauge("serve.server.queries_per_s")),
      metric_batch_lines_(&obs::GetHistogram(
          "serve.server.batch_lines",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})) {}

Server::Server(Server&&) noexcept = default;
Server& Server::operator=(Server&&) noexcept = default;

Server::~Server() {
  if (background_ != nullptr) Stop();
}

Status Server::ServeFd(int in_fd, int out_fd) {
  // N=1 degeneracy: without a shard set this is exactly the pre-sharding
  // single-engine path — the router layer is never even constructed.
  std::optional<Result<QueryEngine>> single;
  std::optional<Result<ShardedQueryEngine>> sharded;
  if (shard_set_ == nullptr) {
    single.emplace(QueryEngine::Create(bank_.graph_ptr(), options_.engine));
    if (!single->ok()) return single->status();
  } else {
    sharded.emplace(ShardedQueryEngine::Create(bank_.graph_ptr(), shard_set_,
                                               options_.engine));
    if (!sharded->ok()) return sharded->status();
  }
  const auto answer = [&](const BankGeneration& generation,
                          const std::vector<QueryRequest>& requests) {
    return single.has_value() ? (*single)->AnswerBatch(generation, requests)
                              : (*sharded)->AnswerBatch(generation, requests);
  };
  LineReader reader(in_fd, options_.interrupt);
  std::string line;
  std::vector<std::string> lines;
  while (reader.NextLine(line)) {
    WallTimer timer;
    lines.clear();
    lines.push_back(std::move(line));
    // Greedy batch: fold in every complete line the client already sent.
    while (lines.size() < options_.max_batch && reader.TryNextLine(line)) {
      lines.push_back(std::move(line));
    }

    std::vector<std::string> responses(lines.size());
    std::vector<QueryRequest> requests;
    std::vector<std::size_t> request_line;
    requests.reserve(lines.size());
    for (std::size_t j = 0; j < lines.size(); ++j) {
      if (lines[j].empty()) {
        responses[j] =
            SerializeParseError(Status::InvalidArgument("empty request line"));
        continue;
      }
      auto json = ParseJson(lines[j]);
      if (!json.ok()) {
        responses[j] = SerializeParseError(json.status());
        continue;
      }
      if (IsAdminRequest(*json)) {
        metric_admin_requests_->Increment();
        auto admin = ParseAdminRequest(*json);
        responses[j] = admin.ok() ? HandleAdmin(*admin)
                                  : SerializeAdminError(AdminRequest{},
                                                        admin.status());
        continue;
      }
      if (IsTopkRequest(*json)) {
        metric_topk_requests_->Increment();
        auto topk = ParseTopkRequest(*json);
        if (!topk.ok()) {
          responses[j] = SerializeParseError(topk.status());
          continue;
        }
        // Same boundary discipline as queries: a request arriving without
        // a query_id gets one minted here so its spans share a trace tree.
        if (topk->query_id == 0) topk->query_id = MintQueryId();
        responses[j] = HandleTopk(*topk);
        continue;
      }
      if (IsIngestRequest(*json)) {
        // Ingest lines are absorbed synchronously, in order with the
        // surrounding queries: a client that writes evidence then a query
        // knows the evidence was absorbed first (the bank rebuild itself
        // is asynchronous).
        auto ingest = ParseIngestRequest(*json);
        if (!ingest.ok()) {
          responses[j] = SerializeParseError(ingest.status());
          continue;
        }
        metric_ingest_lines_->Increment();
        if (ingestor_ == nullptr) {
          responses[j] = SerializeIngestError(
              *ingest, Status::FailedPrecondition(
                           "ingestion is not enabled on this daemon "
                           "(start serve with --ingest)"));
          continue;
        }
        auto ack = ingestor_->IngestLine(ingest->record);
        responses[j] = ack.ok() ? SerializeIngestAck(*ingest,
                                                     ack->absorbed_total,
                                                     ack->epoch)
                                : SerializeIngestError(*ingest, ack.status());
        continue;
      }
      auto request = ParseRequest(*json);
      if (!request.ok()) {
        responses[j] = SerializeParseError(request.status());
        continue;
      }
      // Queries arriving without an id (the normal case — a --shard-procs
      // router injects one before forwarding) get theirs minted here, at
      // the protocol boundary.
      if (request->query_id == 0) request->query_id = MintQueryId();
      request_line.push_back(j);
      requests.push_back(std::move(*request));
    }

    if (!requests.empty()) {
      const std::shared_ptr<const BankGeneration> generation = bank_.Acquire();
      const std::vector<QueryResult> results = answer(*generation, requests);
      for (std::size_t k = 0; k < requests.size(); ++k) {
        responses[request_line[k]] = SerializeResult(requests[k], results[k]);
      }
      LogSlowQueries(requests, results);
    }

    std::string out;
    for (std::string& response : responses) {
      out += response;
      out += '\n';
    }
    if (!WriteAll(out_fd, out)) {
      return Status::IOError("short write to fd ", out_fd, ": ",
                             std::strerror(errno));
    }

    metric_batches_->Increment();
    metric_lines_->Increment(lines.size());
    metric_batch_lines_->Record(static_cast<double>(lines.size()));
    const double seconds = timer.Seconds();
    if (seconds > 0) {
      metric_qps_->Set(static_cast<double>(lines.size()) / seconds);
    }
    bank_.GenerationAgeSeconds();  // refreshes the age gauge
  }
  return Status::OK();
}

std::string Server::HandleTopk(const TopkRequest& request) {
  // The topk kind gets the same latency instruments as flow / community /
  // joint: a log-bucketed histogram plus p50/p95/p99 gauges refreshed per
  // request (see serve/query_plan.cc's MakeKindLatency).
  struct TopkLatency {
    obs::Histogram* hist = &obs::GetHistogram(
        "serve.query.latency_ms.topk", obs::LogBuckets(0.05, 10000.0, 3));
    obs::Gauge* p50 = &obs::GetGauge("serve.query.latency_ms.topk.p50");
    obs::Gauge* p95 = &obs::GetGauge("serve.query.latency_ms.topk.p95");
    obs::Gauge* p99 = &obs::GetGauge("serve.query.latency_ms.topk.p99");
  };
  static TopkLatency latency;

  WallTimer timer;
  obs::TraceSpan span("serve/topk", request.query_id);
  const std::shared_ptr<const BankGeneration> generation = bank_.Acquire();
  const auto outcome = [&]() -> Result<seedmax::SeedMaxResult> {
    std::shared_ptr<const seedmax::RrSketchSet> sketches;
    if (request.community.empty() && request.given.empty()) {
      // The default universe reuses (or builds and publishes) the cached
      // generation-keyed sketch set.
      auto acquired = rr_index_->Acquire(generation);
      IF_RETURN_NOT_OK(acquired.status());
      sketches = std::move(*acquired);
    } else {
      // Community / conditioned universes are request-specific: build an
      // ad-hoc sketch set against the same generation (the reversed view
      // and gathered planes amortize the inversion's fixed costs).
      obs::TraceSpan build_span("seedmax/build_sketches", request.query_id);
      seedmax::RrBuildOptions build;
      build.targets = request.community;
      build.given = request.given;
      build.min_conditional_rows = options_.engine.min_conditional_rows;
      build.pool = &rr_index_->pool();
      auto built =
          seedmax::RrSketchSet::Build(rr_index_->view(), *generation, build);
      IF_RETURN_NOT_OK(built.status());
      sketches =
          std::make_shared<const seedmax::RrSketchSet>(std::move(*built));
    }
    obs::TraceSpan select_span("seedmax/select_seeds", request.query_id);
    seedmax::SeedMaxOptions options;
    options.num_seeds = request.k;
    options.candidates = request.candidates;
    return seedmax::SelectSeeds(*sketches, options);
  }();

  const double ms = timer.Millis();
  if constexpr (obs::MetricsEnabled()) {
    latency.hist->Record(ms);
    const obs::HistogramSnapshot snap = latency.hist->Snapshot();
    latency.p50->Set(snap.Quantile(0.50));
    latency.p95->Set(snap.Quantile(0.95));
    latency.p99->Set(snap.Quantile(0.99));
  }
  return outcome.ok() ? SerializeTopkResult(request, *outcome)
                      : SerializeTopkError(request, outcome.status());
}

std::string Server::HandleAdmin(const AdminRequest& request) {
  JsonValue::Object response;
  response["id"] = request.id;
  response["ok"] = true;
  switch (request.verb) {
    case AdminRequest::Verb::kStats: {
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::Global().Snapshot();
      auto stats = ParseJson(snap.ToJson());
      IF_CHECK(stats.ok()) << "metrics snapshot must serialize as JSON";
      response["stats"] = std::move(*stats);
      response["prometheus"] = snap.ToPrometheus();
      break;
    }
    case AdminRequest::Verb::kHealth: {
      JsonValue::Object health;
      health["role"] = shard_set_ == nullptr ? "server" : "sharded-server";
      const std::shared_ptr<const BankGeneration> generation = bank_.Acquire();
      health["generation"] = static_cast<double>(generation->id());
      health["generation_age_s"] = bank_.GenerationAgeSeconds();
      health["model_epoch"] = static_cast<double>(generation->model_epoch());
      health["rows"] = static_cast<double>(generation->num_rows());
      health["num_shards"] = static_cast<double>(options_.num_shards);
      JsonValue::Object ingest;
      ingest["enabled"] = ingestor_ != nullptr;
      if (ingestor_ != nullptr) {
        ingest["epoch"] =
            static_cast<double>(ingestor_->CurrentEpoch()->id);
        ingest["absorbed_total"] =
            static_cast<double>(ingestor_->absorbed());
        ingest["rejected_total"] =
            static_cast<double>(ingestor_->rejected());
        ingest["queue_depth"] =
            static_cast<double>(ingestor_->queue_depth());
      }
      health["ingest"] = std::move(ingest);
      response["health"] = std::move(health);
      break;
    }
    case AdminRequest::Verb::kTraceEnable:
      obs::Tracing::Enable(request.trace_capacity != 0
                               ? request.trace_capacity
                               : std::size_t{1} << 14);
      response["trace"] = "enabled";
      break;
    case AdminRequest::Verb::kTraceDisable:
      obs::Tracing::Disable();
      response["trace"] = "disabled";
      break;
    case AdminRequest::Verb::kTraceExport: {
      auto exported = ParseJson(obs::Tracing::ExportChromeJson());
      IF_CHECK(exported.ok()) << "trace export must serialize as JSON";
      response["trace"] = std::move(*exported);
      break;
    }
  }
  return JsonValue(std::move(response)).Dump();
}

void Server::LogSlowQueries(const std::vector<QueryRequest>& requests,
                            const std::vector<QueryResult>& results) {
  if (options_.slow_query_ms <= 0.0) return;
  Background& bg = *background_;
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const QueryResult& result = results[k];
    const bool deadline =
        result.status.code() == StatusCode::kDeadlineExceeded;
    if (result.latency_ms < options_.slow_query_ms && !deadline) continue;
    metric_slow_queries_->Increment();
    JsonValue::Object record;
    record["ts_ms"] = static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    record["query_id"] = static_cast<double>(requests[k].query_id);
    record["id"] = requests[k].id;
    record["kind"] = QueryKindName(requests[k].kind);
    record["backend"] = QueryBackendName(result.backend);
    record["ok"] = result.status.ok();
    if (!result.status.ok()) {
      record["error_code"] = StatusCodeName(result.status.code());
    }
    record["latency_ms"] = result.latency_ms;
    record["generation"] = static_cast<double>(result.generation);
    record["model_epoch"] = static_cast<double>(result.model_epoch);
    record["total_rows"] = static_cast<double>(result.total_rows);
    record["effective_rows"] = static_cast<double>(result.effective_rows);
    record["exchange_rounds"] = static_cast<double>(result.exchange_rounds);
    record["cut_frontier_words"] =
        static_cast<double>(result.cut_frontier_words);
    JsonValue::Array shard_ms;
    for (const double ms : result.shard_replay_ms) shard_ms.push_back(ms);
    record["shard_replay_ms"] = std::move(shard_ms);
    double rhat_max = 0.0;
    for (const SinkEstimate& est : result.estimates) {
      rhat_max = std::max(rhat_max, est.diagnostics.rhat);
    }
    record["rhat_max"] = rhat_max;
    const std::string line = JsonValue(std::move(record)).Dump();
    std::lock_guard<std::mutex> lock(bg.slow_mutex);
    if (!bg.slow_out.is_open() && !bg.slow_open_failed) {
      bg.slow_out.open(options_.slow_query_path, std::ios::app);
      // A bad path must not take the serve loop down; note it once.
      bg.slow_open_failed = !bg.slow_out.is_open();
    }
    if (bg.slow_out.is_open()) {
      bg.slow_out << line << '\n';
      bg.slow_out.flush();
    }
  }
}

void Server::WriteStatsSnapshot() {
  const std::string tmp = options_.stats_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return;
    out << obs::MetricsRegistry::Global().Snapshot().ToJson() << '\n';
  }
  std::rename(tmp.c_str(), options_.stats_path.c_str());
}

void Server::StatsLoop() {
  Background& bg = *background_;
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.stats_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!bg.stopping.load()) {
    if (std::chrono::steady_clock::now() < next) {
      // Sleep in short slices so Stop() is prompt.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    WriteStatsSnapshot();
    next = std::chrono::steady_clock::now() + interval;
  }
  // Stop() writes the final snapshot after joining us.
}

void Server::AttachIngestor(
    std::shared_ptr<stream::StreamIngestor> ingestor) {
  IF_CHECK(!background_->started.load())
      << "AttachIngestor must precede Start()";
  ingestor_ = std::move(ingestor);
  ingestor_->SetEpochCallback(
      [this](std::shared_ptr<const stream::ModelEpoch> epoch) {
        if (epoch->drift > options_.drift_threshold) {
          RequestRebuild(std::move(epoch));
        }
      });
}

void Server::RequestRebuild(
    std::shared_ptr<const stream::ModelEpoch> epoch) {
  Background& bg = *background_;
  {
    std::lock_guard<std::mutex> lock(bg.rebuild_mutex);
    bg.pending_epoch = std::move(epoch);  // newest epoch supersedes
  }
  metric_rebuilds_triggered_->Increment();
  bg.rebuild_cv.notify_one();
}

void Server::RebuildLoop() {
  Background& bg = *background_;
  while (true) {
    std::shared_ptr<const stream::ModelEpoch> epoch;
    {
      std::unique_lock<std::mutex> lock(bg.rebuild_mutex);
      bg.rebuild_cv.wait(lock, [&bg] {
        return bg.pending_epoch != nullptr || bg.rebuild_stop;
      });
      // A queued epoch is still applied during shutdown (the drain Stop()
      // promises); the worker exits only once nothing is pending.
      if (bg.pending_epoch == nullptr) return;
      epoch = std::move(bg.pending_epoch);
      bg.pending_epoch = nullptr;
    }
    if (bank_.Rebuild(epoch->model, epoch->id).ok()) {
      // Fan the new generation out to every shard view before queries can
      // hit it — one publish, K consistent gathers, no torn generation.
      // The sketch index re-primes the same way, so streamed evidence
      // deterministically invalidates stale reverse-reachable sketches.
      const std::shared_ptr<const BankGeneration> generation = bank_.Acquire();
      if (shard_set_ != nullptr) shard_set_->Prime(*generation);
      rr_index_->Prime(generation);
    }
  }
}

Status Server::Start() {
  Background& bg = *background_;
  if (bg.started.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (!options_.socket_path.empty()) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket(): ", std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unlink(options_.socket_path.c_str());
    if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      const Status status = Status::IOError(
          "bind(", options_.socket_path, "): ", std::strerror(errno));
      close(fd);
      return status;
    }
    if (listen(fd, 16) < 0) {
      const Status status = Status::IOError("listen(): ", std::strerror(errno));
      close(fd);
      return status;
    }
    bg.listen_fd = fd;
    bg.accept_thread = std::thread([this] { AcceptLoop(); });
  }
  if (options_.refresh_interval_ms > 0.0) {
    bg.refresh_thread = std::thread([this] { RefreshLoop(); });
  }
  if (ingestor_ != nullptr) {
    bg.rebuild_thread = std::thread([this] { RebuildLoop(); });
  }
  if (options_.stats_interval_ms > 0.0) {
    bg.stats_thread = std::thread([this] { StatsLoop(); });
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  Background& bg = *background_;
  while (!bg.stopping.load()) {
    const int conn = accept(bg.listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by Stop(), or fatal
    }
    metric_connections_->Increment();
    std::lock_guard<std::mutex> lock(bg.connections_mutex);
    bg.connections.emplace_back([this, conn] {
      // Each connection gets its own engine (ServeFd creates one); the bank
      // is shared and its Acquire() is thread-safe.
      (void)ServeFd(conn, conn);
      close(conn);
    });
  }
}

void Server::RefreshLoop() {
  Background& bg = *background_;
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.refresh_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (!bg.stopping.load()) {
    if (std::chrono::steady_clock::now() < next) {
      // Sleep in short slices so Stop() is prompt.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    bank_.Refresh();
    {
      const std::shared_ptr<const BankGeneration> generation = bank_.Acquire();
      if (shard_set_ != nullptr) shard_set_->Prime(*generation);
      rr_index_->Prime(generation);
    }
    next = std::chrono::steady_clock::now() + interval;
  }
}

void Server::Stop() {
  Background& bg = *background_;
  bg.stopping.store(true);
  // Quiesce every epoch source before the rebuild worker is allowed to
  // exit: first the side-channel feed (draining it may publish one final
  // epoch), then the listener and the connection threads (an open
  // connection can absorb an {"ingest":...} line until it is joined).
  if (ingestor_ != nullptr) ingestor_->StopFeed();
  if (bg.listen_fd >= 0) {
    // shutdown() unblocks accept(); close() invalidates the fd.
    shutdown(bg.listen_fd, SHUT_RDWR);
    close(bg.listen_fd);
    bg.listen_fd = -1;
  }
  if (bg.accept_thread.joinable()) bg.accept_thread.join();
  if (bg.refresh_thread.joinable()) bg.refresh_thread.join();
  if (bg.stats_thread.joinable()) bg.stats_thread.join();
  // Final snapshot so the artifact reflects every line served, even on a
  // daemon that never ran the periodic writer (stats_path without
  // --stats-every).
  if (!options_.stats_path.empty()) WriteStatsSnapshot();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(bg.connections_mutex);
    connections.swap(bg.connections);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  // Nothing can publish through this server anymore; detach the callback
  // so an ingestor kept alive by an external shared_ptr cannot call into
  // a stopped (or destroyed) server.
  if (ingestor_ != nullptr) ingestor_->SetEpochCallback(nullptr);
  // Drain the rebuild worker last: every epoch queued above is applied
  // before Stop() returns.
  {
    std::lock_guard<std::mutex> lock(bg.rebuild_mutex);
    bg.rebuild_stop = true;
  }
  bg.rebuild_cv.notify_all();
  if (bg.rebuild_thread.joinable()) bg.rebuild_thread.join();
  if (!options_.socket_path.empty()) {
    unlink(options_.socket_path.c_str());
  }
}

}  // namespace infoflow::serve
