/// \file protocol.h
/// \brief The serve daemon's newline-delimited JSON wire format.
///
/// One request object per line in, one response object per line out,
/// positionally ordered within a batch. Requests:
///
/// \code{.json}
///   {"id":"q1","source":0,"sink":3}
///   {"id":"q2","sources":[0,5],"sinks":[3,7,9],"given":"1>4 2!>6",
///    "timeout_ms":50}
///   {"id":"q3","kind":"joint","flows":"0>3 5>7"}
/// \endcode
///
/// `source`/`sink` accept a single number or the plural array form;
/// `flows` and `given` use the CLI's condition grammar ("u>v" requires
/// u ⤳ v, "u!>v" forbids it — see core/ParseFlowConditions). `kind` is
/// optional: "joint" is inferred from `flows`, "community" from multiple
/// sinks, "flow" otherwise. Responses:
///
/// \code{.json}
///   {"id":"q1","ok":true,"generation":1,"total_rows":4096,
///    "effective_rows":4096,"frontier_shared":false,
///    "estimates":[{"sink":3,"value":0.42,"mcse":0.011,"ess":812.3,
///                  "rhat":1.002}]}
///   {"id":"q4","ok":false,"error":{"code":"failed-precondition",
///    "message":"conditional query q4: only 3 of 4096 bank rows ..."}}
/// \endcode

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "seedmax/seed_selector.h"
#include "serve/query_engine.h"
#include "util/json.h"
#include "util/status.h"

namespace infoflow::serve {

/// \brief One streamed-evidence submission on the serve connection:
/// {"id":"i1","ingest":"0|0 1|0>1"} (the `ingest` value is any line
/// stream/ParseEvidenceLine accepts — a native attributed/trace record or
/// a {"attributed":...}/{"trace":...} envelope re-encoded as a string).
/// Acknowledged with {"id":"i1","ok":true,"ingested":true,
/// "absorbed_total":N,"epoch":E}.
struct IngestRequest {
  /// Caller-assigned id echoed in the acknowledgement.
  std::string id;
  /// The evidence record line to absorb.
  std::string record;
};

/// True when the (already-parsed) request object is an ingest submission
/// (has an "ingest" member) rather than a query.
bool IsIngestRequest(const JsonValue& json);

/// \brief Parses one ingest submission ("ingest" must be a string).
Result<IngestRequest> ParseIngestRequest(const JsonValue& json);

/// \brief Acknowledgement line for an absorbed record (without newline).
std::string SerializeIngestAck(const IngestRequest& request,
                               std::uint64_t absorbed_total,
                               std::uint64_t epoch);

/// \brief Error line for a rejected ingest submission (parse/validation
/// failure, or ingestion not enabled on this daemon).
std::string SerializeIngestError(const IngestRequest& request,
                                 const Status& status);

/// \brief One live-introspection verb on the serve connection:
///
/// \code{.json}
///   {"id":"s1","stats":true}
///   {"id":"h1","health":true}
///   {"id":"t1","trace":{"enable":true,"events_per_thread":4096}}
///   {"id":"t2","trace":{"enable":false}}
///   {"id":"t3","trace":{"export":true}}
/// \endcode
///
/// `stats` answers with the metrics snapshot embedded as JSON plus a
/// Prometheus text exposition; `health` with bank generation / model epoch /
/// shard liveness / queue depth; `trace` arms, disarms, or exports the span
/// ring buffers of the running daemon.
struct AdminRequest {
  enum class Verb { kStats, kHealth, kTraceEnable, kTraceDisable,
                    kTraceExport };
  /// Caller-assigned id echoed in the response.
  std::string id;
  Verb verb = Verb::kStats;
  /// Ring capacity for kTraceEnable; 0 = keep the default.
  std::size_t trace_capacity = 0;
};

/// True when the (already-parsed) request object is an admin verb (has a
/// "stats", "health", or "trace" member) rather than a query.
bool IsAdminRequest(const JsonValue& json);

/// \brief Parses one admin verb object.
Result<AdminRequest> ParseAdminRequest(const JsonValue& json);

/// \brief Error line for a malformed or unsupported admin verb.
std::string SerializeAdminError(const AdminRequest& request,
                                const Status& status);

/// \brief One top-k seed-selection request on the serve connection
/// (seedmax/: greedy max-coverage over the bank's reverse-reachable
/// sketches):
///
/// \code{.json}
///   {"id":"m1","topk":3}
///   {"id":"m2","topk":2,"candidates":[0,1,2],"community":[7,8,9],
///    "given":"0>3"}
/// \endcode
///
/// `topk` is the seed-set size k; `candidates` restricts eligible seeds;
/// `community` restricts the spread universe (constrained
/// flow-maximization: seeds maximize expected reach *into* the listed
/// nodes); `given` conditions the underlying pseudo-states (Eq. 7–8,
/// same grammar as query conditioning). Answered with the seed picks,
/// their running unbiased spread estimates and MCSE, and the sketch
/// provenance (generation, sketch count, CELF evaluation/prune counters).
struct TopkRequest {
  /// Caller-assigned id echoed in the response.
  std::string id;
  /// Request-level trace id (minted at the boundary when absent; echoed
  /// only when the client provided one — same discipline as queries).
  std::uint64_t query_id = 0;
  bool query_id_provided = false;
  /// Seed-set size k.
  std::size_t k = 1;
  /// Eligible seeds (empty: every node).
  std::vector<NodeId> candidates;
  /// Spread universe (empty: every node).
  std::vector<NodeId> community;
  /// Eq. 7–8 conditioning of the pseudo-states.
  FlowConditions given;
};

/// True when the (already-parsed) request object is a top-k seed
/// selection (has a "topk" member) rather than a query.
bool IsTopkRequest(const JsonValue& json);

/// \brief Parses one top-k request ("topk" must be a positive integer).
Result<TopkRequest> ParseTopkRequest(const JsonValue& json);

/// \brief Response line for a completed selection (without newline).
std::string SerializeTopkResult(const TopkRequest& request,
                                const seedmax::SeedMaxResult& result);

/// \brief Error line for a failed selection (validation, conditional
/// floor, out-of-range nodes).
std::string SerializeTopkError(const TopkRequest& request,
                               const Status& status);

/// \brief Process-wide monotonic query-id mint (first id is 1). The serve
/// boundary stamps every query that arrives without one, so each request's
/// spans — parse, plan, shard replay, merge — share an id across threads
/// and (via `--shard-procs` forwarding) across processes.
std::uint64_t MintQueryId();

/// \brief Parses one request object (already-parsed JSON). Range checks
/// against the graph happen later, in QueryEngine::AnswerBatch.
Result<QueryRequest> ParseRequest(const JsonValue& json);

/// Convenience: ParseJson + ParseRequest on one protocol line.
Result<QueryRequest> ParseRequestLine(std::string_view line);

/// \brief Serializes one response line (without trailing newline). The
/// request supplies the echoed id; error results carry
/// {"error":{"code":...,"message":...}} instead of estimates.
std::string SerializeResult(const QueryRequest& request,
                            const QueryResult& result);

/// \brief An error response for a line that failed to parse (no request to
/// echo an id from; "id" is null).
std::string SerializeParseError(const Status& status);

}  // namespace infoflow::serve
