#include "serve/query_plan.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <utility>

#include "graph/strip_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/convergence.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Per-query-kind latency instruments: a log-bucketed histogram (constant
/// relative quantile error from 50 µs to 10 s) plus p50/p95/p99 gauges
/// refreshed from it after every batch that answers that kind.
struct KindLatency {
  obs::Histogram* hist;
  obs::Gauge* p50;
  obs::Gauge* p95;
  obs::Gauge* p99;
};

KindLatency MakeKindLatency(const char* kind) {
  const std::string base = std::string("serve.query.latency_ms.") + kind;
  return {&obs::GetHistogram(base, obs::LogBuckets(0.05, 10000.0, 3)),
          &obs::GetGauge(base + ".p50"), &obs::GetGauge(base + ".p95"),
          &obs::GetGauge(base + ".p99")};
}

/// The serve.query.* instruments, shared by every engine flavor so a
/// sharded server's dashboards read the same series as a single one.
struct PlanMetrics {
  obs::Counter* batches = &obs::GetCounter("serve.query.batches_total");
  obs::Counter* requests = &obs::GetCounter("serve.query.requests_total");
  obs::Counter* rows_scanned =
      &obs::GetCounter("serve.query.rows_scanned_total");
  obs::Counter* frontier_merged =
      &obs::GetCounter("serve.query.frontier_merged_total");
  obs::Counter* deadline_exceeded =
      &obs::GetCounter("serve.query.deadline_exceeded_total");
  obs::Counter* conditional_floor =
      &obs::GetCounter("serve.query.conditional_floor_total");
  obs::Histogram* batch_size = &obs::GetHistogram(
      "serve.query.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  obs::Histogram* group_size = &obs::GetHistogram(
      "serve.query.group_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  obs::Histogram* latency_ms = &obs::GetHistogram(
      "serve.query.latency_ms",
      {0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0, 5000.0});
  /// Indexed by static_cast<std::size_t>(QueryKind).
  KindLatency kind_latency[3] = {MakeKindLatency("flow"),
                                 MakeKindLatency("community"),
                                 MakeKindLatency("joint")};

  static PlanMetrics& Get() {
    static PlanMetrics metrics;
    return metrics;
  }
};

/// One distinct conditioning set within a batch: its row mask is computed
/// once and shared by every query conditioning on it.
struct GivenSet {
  std::size_t key = 0;
  /// Sorted canonical copy, for order-insensitive equality.
  FlowConditions sorted;
  /// The conditions as first seen (for row evaluation; order irrelevant).
  FlowConditions conditions;
  /// mask[b] bit s = 1 iff row 64·b + s satisfies every condition. One
  /// word per bank block, bits always within the block's lane mask.
  std::vector<std::uint64_t> mask;
  std::size_t survivors = 0;
  /// Latest member deadline — the mask scan runs while any member has time.
  Clock::time_point deadline = Clock::time_point::max();
  bool expired = false;
};

/// One row scan: either a merged source frontier answering several
/// kFlow/kCommunity queries, or a single kJoint query.
struct ScanGroup {
  /// Sorted-unique source set (empty for joint groups).
  std::vector<NodeId> sources;
  /// Union of member sinks, sorted-unique (frontier groups).
  std::vector<NodeId> sinks;
  /// The joint request's flows (joint groups).
  FlowConditions flows;
  bool joint = false;
  /// Index into the batch's given-set table; SIZE_MAX → unconditional.
  std::size_t given_index = 0;
  /// Request indices answered by this scan.
  std::vector<std::size_t> members;
  Clock::time_point deadline = Clock::time_point::max();
  /// Per-sink indicator bitmaps: word [s·num_blocks + b] bit l = sink s
  /// reached in row 64·b + l (frontier groups; s indexes `sinks`). Joint
  /// groups use one bitmap: word [b] bit l = all flows hold in row 64·b+l.
  std::vector<std::uint64_t> indicators;
  bool expired = false;
};

FlowConditions SortedConditions(FlowConditions conditions) {
  std::sort(conditions.begin(), conditions.end(),
            [](const FlowConstraint& a, const FlowConstraint& b) {
              if (a.source != b.source) return a.source < b.source;
              if (a.sink != b.sink) return a.sink < b.sink;
              return a.must_flow < b.must_flow;
            });
  return conditions;
}

std::vector<NodeId> SortedUnique(std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace

Status ValidateQueryRequest(const DirectedGraph& graph,
                            const QueryRequest& request) {
  const NodeId n = graph.num_nodes();
  if (request.timeout_ms < 0.0) {
    return Status::InvalidArgument("timeout_ms must be >= 0, got ",
                                   request.timeout_ms);
  }
  IF_RETURN_NOT_OK(ValidateConditions(graph, request.given));
  if (request.kind == QueryKind::kJoint) {
    if (request.flows.empty()) {
      return Status::InvalidArgument("joint query needs at least one flow");
    }
    return ValidateConditions(graph, request.flows);
  }
  if (request.sources.empty()) {
    return Status::InvalidArgument(QueryKindName(request.kind),
                                   " query needs at least one source");
  }
  if (request.sinks.empty()) {
    return Status::InvalidArgument(QueryKindName(request.kind),
                                   " query needs at least one sink");
  }
  if (request.kind == QueryKind::kFlow && request.sinks.size() != 1) {
    return Status::InvalidArgument("flow query takes exactly one sink, got ",
                                   request.sinks.size(),
                                   " (use kind=community)");
  }
  // Out-of-range endpoints are rejected here, with a descriptive Status the
  // caller can surface — the BFS workspaces never see an unvalidated id, so
  // their internal IF_CHECKs cannot abort a release serve build on bad
  // client input.
  for (const NodeId s : request.sources) {
    if (s >= n) return Status::OutOfRange("source ", s, " >= n=", n);
  }
  for (const NodeId s : request.sinks) {
    if (s >= n) return Status::OutOfRange("sink ", s, " >= n=", n);
  }
  return Status::OK();
}

std::vector<QueryResult> RunQueryPlan(
    const DirectedGraph& graph, const BankGeneration& bank,
    const std::vector<QueryRequest>& requests, const QueryPlanOptions& options,
    ThreadPool& pool, BlockOps& ops) {
  // The batch span carries the first stamped query id so a one-query batch
  // (the common interactive case) traces as a single connected tree.
  std::uint64_t batch_query_id = 0;
  for (const QueryRequest& request : requests) {
    if (request.query_id != 0) {
      batch_query_id = request.query_id;
      break;
    }
  }
  obs::TraceSpan span("serve/answer_batch", batch_query_id);
  WallTimer timer;
  PlanMetrics& metrics = PlanMetrics::Get();
  const Clock::time_point entry = Clock::now();
  IF_CHECK(bank.num_edges() == graph.num_edges())
      << "bank rows were drawn from a different graph";

  metrics.batches->Increment();
  metrics.requests->Increment(requests.size());
  metrics.batch_size->Record(static_cast<double>(requests.size()));

  const std::size_t num_rows = bank.num_rows();
  const std::size_t num_blocks = bank.num_blocks();
  std::vector<QueryResult> results(requests.size());
  std::vector<Clock::time_point> deadlines(requests.size(),
                                           Clock::time_point::max());
  // Sources are canonicalized (sorted, deduplicated) once per request, up
  // front: frontier grouping compares the canonical sets, and both BFS
  // paths receive duplicate-free source lists instead of leaning on the
  // per-run visited check to drop repeats.
  std::vector<std::vector<NodeId>> canonical_sources(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    results[i].total_rows = num_rows;
    results[i].generation = bank.id();
    results[i].model_epoch = bank.model_epoch();
    results[i].status = ValidateQueryRequest(graph, requests[i]);
    if (results[i].status.ok() && requests[i].kind != QueryKind::kJoint) {
      canonical_sources[i] = SortedUnique(requests[i].sources);
    }
    if (requests[i].timeout_ms > 0.0) {
      deadlines[i] =
          entry + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          requests[i].timeout_ms));
    }
  }

  // --- Distinct conditioning sets: one row mask each, shared batch-wide.
  std::vector<GivenSet> given_sets;
  // SIZE_MAX sentinel: unconditional.
  constexpr std::size_t kUnconditional = static_cast<std::size_t>(-1);
  std::vector<std::size_t> given_of(requests.size(), kUnconditional);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok() || requests[i].given.empty()) continue;
    const std::size_t key = HashConditions(requests[i].given);
    FlowConditions sorted = SortedConditions(requests[i].given);
    std::size_t g = given_sets.size();
    for (std::size_t j = 0; j < given_sets.size(); ++j) {
      if (given_sets[j].key == key && given_sets[j].sorted == sorted) {
        g = j;
        break;
      }
    }
    if (g == given_sets.size()) {
      GivenSet set;
      set.key = key;
      set.sorted = std::move(sorted);
      set.conditions = requests[i].given;
      set.mask.assign(num_blocks, 0);
      set.deadline = deadlines[i];
      given_sets.push_back(std::move(set));
    } else {
      // The shared mask scan runs while *any* member still has time; a
      // member whose own deadline lapses is failed individually afterwards.
      given_sets[g].deadline = std::max(given_sets[g].deadline, deadlines[i]);
    }
    given_of[i] = g;
  }

  // Workers partition whole strips of W consecutive blocks (W = 1 for the
  // per-block engines), so mask/indicator words are never shared between
  // tasks — the scalar path writes single bits into the same words the
  // batch path fills 64·W at a time.
  const unsigned strip_words = std::max(1u, ops.StripWords());
  IF_CHECK_LE(strip_words, kMaxStripWords);
  const std::size_t num_strips = (num_blocks + strip_words - 1) / strip_words;
  const std::size_t num_tasks = pool.size();
  const auto task_range = [&](std::size_t t) {
    const std::size_t per = (num_strips + num_tasks - 1) / num_tasks;
    const std::size_t begin = std::min(t * per, num_strips);
    return std::pair<std::size_t, std::size_t>(
        begin, std::min(begin + per, num_strips));
  };
  const std::size_t strips_per_check = std::max<std::size_t>(
      1, options.rows_per_task / (std::size_t{64} * strip_words));

  for (GivenSet& set : given_sets) {
    obs::TraceSpan mask_span("serve/plan/given_mask", batch_query_id);
    ops.BeginGroup(batch_query_id);
    std::atomic<bool> expired{false};
    std::vector<std::size_t> partial(num_tasks, 0);
    ParallelFor(pool, num_tasks, [&](std::size_t t) {
      const auto [begin, end] = task_range(t);
      std::size_t count = 0;
      std::uint64_t lanes[kMaxStripWords];
      for (std::size_t s = begin; s < end; ++s) {
        if ((s - begin) % strips_per_check == 0 &&
            (expired.load(std::memory_order_relaxed) ||
             Clock::now() > set.deadline)) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        const std::size_t b0 = s * strip_words;
        const std::size_t bn =
            std::min<std::size_t>(strip_words, num_blocks - b0);
        for (std::size_t w = 0; w < strip_words; ++w) {
          lanes[w] = w < bn ? bank.BlockLaneMask(b0 + w) : 0;
        }
        ops.StripConditions(t, s, set.conditions, lanes);
        for (std::size_t w = 0; w < bn; ++w) {
          set.mask[b0 + w] = lanes[w];
          count += static_cast<std::size_t>(std::popcount(lanes[w]));
        }
      }
      partial[t] = count;
    });
    set.expired = expired.load();
    for (const std::size_t c : partial) set.survivors += c;
    metrics.rows_scanned->Increment(num_rows);
  }

  // --- Conditional floor and given-set deadline, per request.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok() || given_of[i] == kUnconditional) continue;
    const GivenSet& set = given_sets[given_of[i]];
    if (set.expired) {
      results[i].status = Status::DeadlineExceeded(
          "query ", requests[i].id, " exceeded its ", requests[i].timeout_ms,
          " ms deadline while filtering rows by C");
      metrics.deadline_exceeded->Increment();
      continue;
    }
    results[i].effective_rows = set.survivors;
    if (set.survivors == 0 || set.survivors < options.min_conditional_rows) {
      results[i].status = Status::FailedPrecondition(
          "conditional query ", requests[i].id, ": only ", set.survivors,
          " of ", num_rows, " bank rows satisfy the conditioning set (floor ",
          options.min_conditional_rows,
          "); widen the bank or relax the conditions");
      metrics.conditional_floor->Increment();
    }
  }

  // --- Group surviving requests into row scans.
  std::vector<ScanGroup> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].status.ok()) continue;
    const QueryRequest& request = requests[i];
    if (request.kind == QueryKind::kJoint) {
      ScanGroup group;
      group.joint = true;
      group.flows = request.flows;
      group.given_index = given_of[i];
      group.members.push_back(i);
      group.deadline = deadlines[i];
      groups.push_back(std::move(group));
      continue;
    }
    const std::vector<NodeId>& sources = canonical_sources[i];
    std::size_t g = groups.size();
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (!groups[j].joint && groups[j].sources == sources &&
          groups[j].given_index == given_of[i]) {
        g = j;
        break;
      }
    }
    if (g == groups.size()) {
      ScanGroup group;
      group.sources = sources;
      group.given_index = given_of[i];
      group.deadline = deadlines[i];
      groups.push_back(std::move(group));
    } else {
      groups[g].deadline = std::max(groups[g].deadline, deadlines[i]);
    }
    groups[g].members.push_back(i);
    groups[g].sinks.insert(groups[g].sinks.end(), request.sinks.begin(),
                           request.sinks.end());
  }

  // --- Scan each group's rows in parallel.
  for (ScanGroup& group : groups) {
    const std::uint64_t group_query_id =
        group.members.empty() ? batch_query_id
                              : requests[group.members.front()].query_id;
    obs::TraceSpan group_span("serve/plan/scan_group", group_query_id);
    ops.BeginGroup(group_query_id);
    metrics.group_size->Record(static_cast<double>(group.members.size()));
    if (group.members.size() > 1) {
      metrics.frontier_merged->Increment(group.members.size() - 1);
    }
    group.sinks = SortedUnique(group.sinks);
    const std::size_t num_sinks = group.joint ? 1 : group.sinks.size();
    group.indicators.assign(num_sinks * num_blocks, 0);
    const std::uint64_t* mask = group.given_index == kUnconditional
                                    ? nullptr
                                    : given_sets[group.given_index].mask.data();
    std::atomic<bool> expired{false};
    ParallelFor(pool, num_tasks, [&](std::size_t t) {
      const auto [begin, end] = task_range(t);
      std::vector<std::uint64_t> out(group.sinks.size() * strip_words);
      std::uint64_t lanes[kMaxStripWords];
      for (std::size_t s = begin; s < end; ++s) {
        if ((s - begin) % strips_per_check == 0 &&
            (expired.load(std::memory_order_relaxed) ||
             Clock::now() > group.deadline)) {
          expired.store(true, std::memory_order_relaxed);
          return;
        }
        // Conditional scans only visit the surviving lanes; a strip with
        // no survivors in any of its blocks is skipped outright (dead
        // blocks inside a live strip ride along with all-zero lane words
        // and contribute all-zero indicators, exactly like a skip).
        const std::size_t b0 = s * strip_words;
        const std::size_t bn =
            std::min<std::size_t>(strip_words, num_blocks - b0);
        std::uint64_t any = 0;
        for (std::size_t w = 0; w < strip_words; ++w) {
          lanes[w] = w < bn ? (mask != nullptr ? mask[b0 + w]
                                               : bank.BlockLaneMask(b0 + w))
                            : 0;
          any |= lanes[w];
        }
        if (any == 0) continue;
        if (group.joint) {
          ops.StripConditions(t, s, group.flows, lanes);
          for (std::size_t w = 0; w < bn; ++w) {
            group.indicators[b0 + w] = lanes[w];
          }
        } else {
          ops.StripReach(t, s, group.sources, lanes, group.sinks, out.data());
          for (std::size_t c = 0; c < group.sinks.size(); ++c) {
            for (std::size_t w = 0; w < bn; ++w) {
              group.indicators[c * num_blocks + b0 + w] =
                  out[c * strip_words + w];
            }
          }
        }
      }
    });
    group.expired = expired.load();
    metrics.rows_scanned->Increment(num_rows);
  }

  // --- Assemble per-request estimates with chain diagnostics.
  obs::TraceSpan assemble_span("serve/plan/assemble", batch_query_id);
  const std::size_t num_chains = bank.num_chains();
  for (const ScanGroup& group : groups) {
    const std::uint64_t* mask = group.given_index == kUnconditional
                                    ? nullptr
                                    : given_sets[group.given_index].mask.data();
    const std::size_t survivors =
        mask == nullptr ? num_rows : given_sets[group.given_index].survivors;
    for (const std::size_t i : group.members) {
      const QueryRequest& request = requests[i];
      if (group.expired || Clock::now() > deadlines[i]) {
        results[i].status = Status::DeadlineExceeded(
            "query ", request.id, " exceeded its ", request.timeout_ms,
            " ms deadline");
        metrics.deadline_exceeded->Increment();
        continue;
      }
      results[i].effective_rows = survivors;
      results[i].frontier_shared = group.members.size() > 1;
      const auto estimate_column = [&](std::size_t column, NodeId sink) {
        const std::uint64_t* ind =
            group.indicators.data() + column * num_blocks;
        std::vector<std::vector<double>> chains(num_chains);
        double sum = 0.0;
        for (std::size_t r = 0; r < num_rows; ++r) {
          const std::uint64_t bit = std::uint64_t{1} << (r & 63);
          if (mask != nullptr && (mask[r >> 6] & bit) == 0) continue;
          const double draw = (ind[r >> 6] & bit) != 0 ? 1.0 : 0.0;
          sum += draw;
          chains[bank.ChainOfRow(r)].push_back(draw);
        }
        // Chains with no surviving rows carry no draws; drop them so the
        // diagnostics see only populated sequences.
        std::erase_if(chains,
                      [](const std::vector<double>& c) { return c.empty(); });
        SinkEstimate est;
        est.sink = sink;
        est.value = sum / static_cast<double>(survivors);
        est.diagnostics = ComputeChainDiagnostics(chains);
        return est;
      };
      if (group.joint) {
        results[i].estimates.push_back(
            estimate_column(0, request.flows.front().sink));
      } else {
        for (const NodeId sink : request.sinks) {
          const auto it = std::lower_bound(group.sinks.begin(),
                                           group.sinks.end(), sink);
          const std::size_t column =
              static_cast<std::size_t>(it - group.sinks.begin());
          results[i].estimates.push_back(estimate_column(column, sink));
        }
      }
    }
  }

  // --- Stamp batch-level cost onto every result and refresh the per-kind
  // latency quantile gauges.
  const BlockOps::BatchStats batch_stats = ops.CollectBatchStats();
  const double batch_ms = timer.Millis();
  for (QueryResult& result : results) {
    result.latency_ms = batch_ms;
    result.exchange_rounds = batch_stats.exchange_rounds;
    result.cut_frontier_words = batch_stats.cut_frontier_words;
    result.shard_replay_ms = batch_stats.shard_replay_ms;
  }
  metrics.latency_ms->Record(batch_ms);
  if constexpr (obs::MetricsEnabled()) {
    bool seen[3] = {false, false, false};
    for (const QueryRequest& request : requests) {
      const auto k = static_cast<std::size_t>(request.kind);
      if (k >= 3 || seen[k]) continue;
      seen[k] = true;
      metrics.kind_latency[k].hist->Record(batch_ms);
      const obs::HistogramSnapshot snap =
          metrics.kind_latency[k].hist->Snapshot();
      metrics.kind_latency[k].p50->Set(snap.Quantile(0.50));
      metrics.kind_latency[k].p95->Set(snap.Quantile(0.95));
      metrics.kind_latency[k].p99->Set(snap.Quantile(0.99));
    }
  }
  return results;
}

}  // namespace infoflow::serve
