#include "serve/sample_bank.h"

#include <algorithm>
#include <utility>

#include "graph/bit_transpose.h"
#include "obs/trace.h"
#include "util/check.h"

namespace infoflow::serve {

Status BankOptions::Validate() const {
  if (num_states == 0) {
    return Status::InvalidArgument("bank num_states must be positive");
  }
  return chain.Validate();
}

BankGeneration::BankGeneration(std::uint64_t id, std::uint64_t model_epoch,
                               std::size_t num_edges, std::size_t num_chains,
                               std::size_t rows_per_chain)
    : id_(id),
      model_epoch_(model_epoch),
      num_edges_(num_edges),
      words_per_row_(PackedRowWords(num_edges)),
      num_chains_(num_chains),
      rows_per_chain_(rows_per_chain),
      num_rows_(num_chains * rows_per_chain),
      words_(num_rows_ * words_per_row_, 0),
      strip_mutex_(std::make_unique<std::mutex>()) {}

void BankGeneration::BuildEdgeMajor() {
  edge_major_.assign(num_blocks() * num_edges_, 0);
  // Cache-blocked transpose: each (64-row block × 64-edge column) tile is
  // gathered from the packed rows, transposed in registers, and scattered
  // into the block's edge-major plane. A ragged tail block zero-fills the
  // missing rows, so bits above the lane mask are always clear.
  std::uint64_t tile[64];
  for (std::size_t b = 0; b < num_blocks(); ++b) {
    const std::size_t row0 = b * 64;
    const std::size_t rows = std::min<std::size_t>(64, num_rows_ - row0);
    std::uint64_t* plane = edge_major_.data() + b * num_edges_;
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      for (std::size_t i = 0; i < rows; ++i) tile[i] = Row(row0 + i)[w];
      for (std::size_t i = rows; i < 64; ++i) tile[i] = 0;
      Transpose64x64(tile);
      const std::size_t e0 = w * 64;
      const std::size_t cols = std::min<std::size_t>(64, num_edges_ - e0);
      for (std::size_t j = 0; j < cols; ++j) plane[e0 + j] = tile[j];
    }
  }
}

std::shared_ptr<const StripPlane> BankGeneration::AcquireStripPlane(
    unsigned width) const {
  IF_CHECK(width == 4 || width == 8) << "unsupported strip width " << width;
  const std::size_t slot = width == 4 ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(*strip_mutex_);
    if (strip_planes_[slot]) return strip_planes_[slot];
  }
  // Interleave outside the lock; two first readers may race a duplicate
  // build and the publish keeps one winner — the same keep-one discipline
  // as ShardEngine::AcquireView, and the plane is pure function of the
  // immutable edge-major plane either way.
  obs::TraceSpan span("serve/bank_strip_interleave");
  WallTimer timer;
  auto plane = std::make_shared<const StripPlane>(BuildStripPlane(
      width, num_edges_, num_blocks(),
      [this](std::size_t b) { return BlockEdgeWords(b); },
      [this](std::size_t b) { return BlockLaneMask(b); }));
  obs::GetHistogram("serve.bank.strip_interleave_ms",
                    {0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0})
      .Record(timer.Millis());
  std::lock_guard<std::mutex> lock(*strip_mutex_);
  if (!strip_planes_[slot]) strip_planes_[slot] = std::move(plane);
  return strip_planes_[slot];
}

PseudoState BankGeneration::UnpackRow(std::size_t r) const {
  IF_CHECK(r < num_rows_) << "row " << r << " out of range " << num_rows_;
  PseudoState state(num_edges_, 0);
  for (EdgeId e = 0; e < num_edges_; ++e) {
    state[e] = EdgeActive(r, e) ? 1 : 0;
  }
  return state;
}

Result<SampleBank> SampleBank::Create(PointIcm model, BankOptions options,
                                      std::uint64_t seed) {
  IF_RETURN_NOT_OK(options.Validate());
  std::shared_ptr<const DirectedGraph> graph = model.graph_ptr();
  // The model is kept alongside the chains: Rebuild validates epochs
  // against it and the serve daemon diffs streamed epochs against it.
  PointIcm kept = model;
  // The bank is unconditional (empty C): conditioning happens at query time
  // by filtering rows, so one bank serves every condition set.
  auto engine = MultiChainSampler::Create(std::move(model), FlowConditions{},
                                          options.chain, seed);
  if (!engine.ok()) return engine.status();
  SampleBank bank(
      std::make_unique<MultiChainSampler>(std::move(engine).ValueOrDie()),
      std::move(graph), options);
  bank.model_.emplace(std::move(kept));
  bank.model_shared_ = std::make_shared<const PointIcm>(*bank.model_);
  bank.base_seed_ = seed;
  bank.current_ = bank.Fill(/*id=*/1, /*model_epoch=*/1);
  bank.age_.Restart();
  return bank;
}

SampleBank::SampleBank(std::unique_ptr<MultiChainSampler> engine,
                       std::shared_ptr<const DirectedGraph> graph,
                       BankOptions options)
    : engine_(std::move(engine)),
      graph_(std::move(graph)),
      options_(options),
      engine_mutex_(std::make_unique<std::mutex>()),
      mutex_(std::make_unique<std::mutex>()),
      metric_generation_(&obs::GetGauge("serve.bank.generation")),
      metric_rows_(&obs::GetGauge("serve.bank.rows")),
      metric_age_s_(&obs::GetGauge("serve.bank.age_s")),
      metric_model_epoch_(&obs::GetGauge("serve.bank.model_epoch")),
      metric_refreshes_(&obs::GetCounter("serve.bank.refreshes_total")),
      metric_rebuilds_(&obs::GetCounter("serve.bank.rebuilds_total")),
      metric_fill_ms_(&obs::GetHistogram(
          "serve.bank.fill_ms",
          {1.0, 5.0, 25.0, 100.0, 500.0, 2500.0, 10000.0})),
      metric_transpose_ms_(&obs::GetHistogram(
          "serve.bank.transpose_ms",
          {0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0})) {}

std::size_t SampleBank::rows_per_generation() const {
  return engine_->num_chains() * engine_->SamplesPerChain(options_.num_states);
}

std::shared_ptr<const BankGeneration> SampleBank::Fill(
    std::uint64_t id, std::uint64_t model_epoch) {
  obs::TraceSpan span("serve/bank_fill");
  WallTimer timer;
  const std::size_t rows_per_chain =
      engine_->SamplesPerChain(options_.num_states);
  auto generation = std::make_shared<BankGeneration>(
      BankGeneration(id, model_epoch, graph_->num_edges(),
                     engine_->num_chains(), rows_per_chain));
  generation->model_ptr_ = model_shared_;
  const std::size_t words_per_row = generation->words_per_row_;
  std::uint64_t* words = generation->words_.data();
  // ForEachSample runs the visitor on the worker owning each chain; rows are
  // chain-major, so chain k writes only its own [k·rows_per_chain,
  // (k+1)·rows_per_chain) slice — disjoint, no synchronization needed.
  engine_->ForEachSample(
      options_.num_states,
      [&](std::size_t chain, std::size_t index, const PseudoState& state) {
        const std::size_t row = chain * rows_per_chain + index;
        std::uint64_t* out = words + row * words_per_row;
        for (EdgeId e = 0; e < state.size(); ++e) {
          if (state[e] != 0) out[e >> 6] |= std::uint64_t{1} << (e & 63);
        }
      });
  {
    // The edge-major plane the batch reachability path consumes; built
    // before publish so readers only ever see a complete plane.
    obs::TraceSpan transpose_span("serve/bank_transpose");
    WallTimer transpose_timer;
    generation->BuildEdgeMajor();
    metric_transpose_ms_->Record(transpose_timer.Millis());
  }
  metric_fill_ms_->Record(timer.Millis());
  metric_generation_->Set(static_cast<double>(id));
  metric_rows_->Set(static_cast<double>(generation->num_rows()));
  metric_model_epoch_->Set(static_cast<double>(model_epoch));
  return generation;
}

std::shared_ptr<const BankGeneration> SampleBank::Acquire() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return current_;
}

void SampleBank::Refresh() {
  // Chains stay burned-in across generations: the next fill resumes the
  // walk, paying only (δ′+1) steps per fresh row.
  std::lock_guard<std::mutex> engine_lock(*engine_mutex_);
  const std::uint64_t next_id = Acquire()->id() + 1;
  std::shared_ptr<const BankGeneration> next = Fill(next_id, model_epoch_);
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    current_ = std::move(next);
    age_.Restart();
  }
  metric_refreshes_->Increment();
  metric_age_s_->Set(0.0);
}

Status SampleBank::Rebuild(PointIcm model, std::uint64_t model_epoch) {
  if (model.graph_ptr()->num_edges() != graph_->num_edges() ||
      model.graph_ptr()->num_nodes() != graph_->num_nodes()) {
    return Status::InvalidArgument(
        "rebuild model topology mismatch: bank graph has ",
        graph_->num_nodes(), " nodes / ", graph_->num_edges(),
        " edges, model has ", model.graph_ptr()->num_nodes(), " / ",
        model.graph_ptr()->num_edges());
  }
  std::lock_guard<std::mutex> engine_lock(*engine_mutex_);
  PointIcm kept = model;
  // Fresh chains for the new model, re-burned-in: the old chains'
  // stationary distribution is the old model's Pr[x | M]. The seed is
  // derived from the Create seed and the epoch id, so a restarted daemon
  // replaying the same evidence rebuilds identical chains.
  auto engine = MultiChainSampler::Create(
      std::move(model), FlowConditions{}, options_.chain,
      MultiChainSampler::DeriveChainSeed(base_seed_, model_epoch));
  if (!engine.ok()) return engine.status();
  engine_ = std::make_unique<MultiChainSampler>(
      std::move(engine).ValueOrDie());
  model_.emplace(std::move(kept));
  model_shared_ = std::make_shared<const PointIcm>(*model_);
  model_epoch_ = model_epoch;
  const std::uint64_t next_id = Acquire()->id() + 1;
  std::shared_ptr<const BankGeneration> next = Fill(next_id, model_epoch);
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    current_ = std::move(next);
    age_.Restart();
  }
  metric_rebuilds_->Increment();
  metric_age_s_->Set(0.0);
  return Status::OK();
}

std::uint64_t SampleBank::model_epoch() const {
  std::lock_guard<std::mutex> lock(*engine_mutex_);
  return model_epoch_;
}

double SampleBank::GenerationAgeSeconds() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const double age = age_.Seconds();
  metric_age_s_->Set(age);
  return age;
}

}  // namespace infoflow::serve
