#include "serve/router.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/query_plan.h"
#include "serve/transport.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::serve {
namespace {

/// \brief BlockOps over the shard views: per-block reachability is the
/// cut-edge frontier-exchange fixpoint described in router.h.
class ShardedOps final : public BlockOps {
 public:
  /// `strip_planes`/`strip_scratch` are non-null only when the batch
  /// resolved a multi-word width (strip_words > 1): strip_planes[s] is
  /// shard s's interleaved W-word plane and strip_scratch[worker][s] its
  /// per-worker workspace, and the Strip* hooks run the same cut-edge
  /// exchange with every lane mask widened to a W-word span.
  ShardedOps(const GraphPartition& partition,
             const std::vector<std::shared_ptr<const ShardView>>& views,
             std::vector<std::vector<BatchReachabilityWorkspace>>& scratch,
             const std::vector<std::shared_ptr<const StripPlane>>* strip_planes,
             std::vector<std::vector<std::unique_ptr<StripWorkspace>>>*
                 strip_scratch,
             unsigned strip_words)
      : partition_(partition),
        views_(views),
        scratch_(scratch),
        strip_planes_(strip_planes),
        strip_scratch_(strip_scratch),
        strip_words_(strip_words),
        dirty_(scratch.size(),
               std::vector<std::uint8_t>(partition.num_shards, 0)),
        src_(scratch.size(), std::vector<NodeId>(1)),
        tallies_(scratch.size()) {
    if constexpr (obs::MetricsEnabled()) {
      batch_begin_ns_ = obs::Tracing::NowNanos();
    }
  }

  /// Registry counters are contended atomics; workers tally locally and
  /// the batch flushes once here (CollectBatchStats normally drains the
  /// tallies first, leaving this a no-op backstop).
  ~ShardedOps() override {
    const BlockOps::BatchStats total = Drain();
    obs::GetCounter("router.cut_frontier_words")
        .Increment(total.cut_frontier_words);
    obs::GetCounter("router.exchange_rounds_total")
        .Increment(total.exchange_rounds);
  }

  void BeginGroup(std::uint64_t query_id) override {
    current_query_id_ = query_id;
  }

  /// Flushes the per-shard replay time into `router.shard_replay_ms.<s>`
  /// histograms (log buckets) with p50/p95/p99 gauges, emits one
  /// "router/shard_replay" span per shard carrying the batch's query id,
  /// and returns the exchange totals for result stamping.
  BlockOps::BatchStats CollectBatchStats() override {
    BlockOps::BatchStats stats = Drain();
    obs::GetCounter("router.cut_frontier_words")
        .Increment(stats.cut_frontier_words);
    obs::GetCounter("router.exchange_rounds_total")
        .Increment(stats.exchange_rounds);
    if constexpr (obs::MetricsEnabled()) {
      for (std::size_t s = 0; s < stats.shard_replay_ms.size(); ++s) {
        const std::string base =
            "router.shard_replay_ms." + std::to_string(s);
        obs::Histogram& hist =
            obs::GetHistogram(base, obs::LogBuckets(0.01, 10000.0, 3));
        hist.Record(stats.shard_replay_ms[s]);
        const obs::HistogramSnapshot snap = hist.Snapshot();
        obs::GetGauge(base + ".p50").Set(snap.Quantile(0.50));
        obs::GetGauge(base + ".p95").Set(snap.Quantile(0.95));
        obs::GetGauge(base + ".p99").Set(snap.Quantile(0.99));
        // Position is approximate (per-shard work interleaves across
        // workers); duration is the accumulated replay time.
        if (obs::Tracing::IsEnabled()) {
          obs::Tracing::ImportSpan(
              "shard/replay/" + std::to_string(s), 1,
              1000 + static_cast<std::uint32_t>(s),
              static_cast<double>(batch_begin_ns_ - 1) / 1000.0,
              stats.shard_replay_ms[s] * 1000.0, current_query_id_);
        }
      }
    }
    return stats;
  }

  std::uint64_t BlockConditions(std::size_t worker, std::size_t block,
                                const FlowConditions& conditions,
                                std::uint64_t lanes) override {
    auto& ws = scratch_[worker];
    std::vector<NodeId>& src = src_[worker];
    if (partition_.num_shards == 1) {
      // N=1 degeneracy: the identity partition makes this exactly the
      // single engine's per-block loop, early exits included.
      const std::uint64_t begin_ns = ReplayClock();
      for (const FlowConstraint& c : conditions) {
        if (lanes == 0) break;
        src[0] = c.source;
        const std::uint64_t reached =
            ws[0].RunUntil(partition_.shards[0].graph, src,
                           views_[0]->BlockWords(block), c.sink, lanes);
        lanes = c.must_flow ? reached : lanes & ~reached;
      }
      AccumulateReplay(worker, 0, begin_ns);
      return lanes;
    }
    for (const FlowConstraint& c : conditions) {
      if (lanes == 0) break;
      src[0] = c.source;
      // The single engine's RunUntil early-exits once the sink's mask
      // saturates `lanes`; running the exchange to its full fixpoint
      // instead reads the same final mask (saturation only stops work the
      // answer no longer depends on), so the lane narrowing is identical.
      Exchange(worker, block, src, lanes);
      const std::uint64_t reached = OwnerMask(ws, c.sink);
      lanes = c.must_flow ? reached : lanes & ~reached;
    }
    return lanes;
  }

  void BlockReach(std::size_t worker, std::size_t block,
                  const std::vector<NodeId>& sources, std::uint64_t lanes,
                  const std::vector<NodeId>& sinks,
                  std::uint64_t* out) override {
    auto& ws = scratch_[worker];
    if (partition_.num_shards == 1) {
      const std::uint64_t begin_ns = ReplayClock();
      ws[0].Run(partition_.shards[0].graph, sources,
                views_[0]->BlockWords(block), lanes);
      AccumulateReplay(worker, 0, begin_ns);
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        out[s] = ws[0].ReachedMask(sinks[s]);
      }
      return;
    }
    Exchange(worker, block, sources, lanes);
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      out[s] = OwnerMask(ws, sinks[s]);
    }
  }

  unsigned StripWords() const override { return strip_words_; }

  void StripConditions(std::size_t worker, std::size_t strip,
                       const FlowConditions& conditions,
                       std::uint64_t* lanes) override {
    if (strip_words_ == 1) {
      BlockOps::StripConditions(worker, strip, conditions, lanes);
      return;
    }
    const unsigned wn = strip_words_;
    auto& ws = (*strip_scratch_)[worker];
    std::vector<NodeId>& src = src_[worker];
    std::uint64_t reached[kMaxStripWords];
    for (const FlowConstraint& c : conditions) {
      std::uint64_t live = 0;
      for (unsigned w = 0; w < wn; ++w) live |= lanes[w];
      if (live == 0) break;
      src[0] = c.source;
      if (partition_.num_shards == 1) {
        const std::uint64_t begin_ns = ReplayClock();
        ws[0]->RunUntil(partition_.shards[0].graph, src,
                        (*strip_planes_)[0]->StripWords(strip), c.sink,
                        lanes, reached);
        AccumulateReplay(worker, 0, begin_ns);
      } else {
        StripExchange(worker, strip, src, lanes);
        const std::uint64_t* mask = OwnerStripMask(ws, c.sink);
        for (unsigned w = 0; w < wn; ++w) reached[w] = mask[w];
      }
      for (unsigned w = 0; w < wn; ++w) {
        lanes[w] = c.must_flow ? reached[w] : lanes[w] & ~reached[w];
      }
    }
  }

  void StripReach(std::size_t worker, std::size_t strip,
                  const std::vector<NodeId>& sources,
                  const std::uint64_t* lanes, const std::vector<NodeId>& sinks,
                  std::uint64_t* out) override {
    if (strip_words_ == 1) {
      BlockOps::StripReach(worker, strip, sources, lanes, sinks, out);
      return;
    }
    const unsigned wn = strip_words_;
    auto& ws = (*strip_scratch_)[worker];
    if (partition_.num_shards == 1) {
      const std::uint64_t begin_ns = ReplayClock();
      ws[0]->Run(partition_.shards[0].graph, sources,
                 (*strip_planes_)[0]->StripWords(strip), lanes);
      AccumulateReplay(worker, 0, begin_ns);
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        const std::uint64_t* mask = ws[0]->ReachedMask(sinks[s]);
        for (unsigned w = 0; w < wn; ++w) out[s * wn + w] = mask[w];
      }
      return;
    }
    StripExchange(worker, strip, sources, lanes);
    for (std::size_t s = 0; s < sinks.size(); ++s) {
      const std::uint64_t* mask = OwnerStripMask(ws, sinks[s]);
      for (unsigned w = 0; w < wn; ++w) out[s * wn + w] = mask[w];
    }
  }

 private:
  struct Tally {
    std::uint64_t cut_words = 0;
    std::uint64_t rounds = 0;
    /// Replay nanoseconds per shard (sized lazily on first use).
    std::vector<std::uint64_t> shard_ns;
  };

  /// One clock read bracketing a whole per-block replay — noise next to
  /// the BFS itself, and compiled out entirely under INFOFLOW_NO_METRICS.
  static std::uint64_t ReplayClock() {
    if constexpr (obs::MetricsEnabled()) {
      return obs::Tracing::NowNanos();
    } else {
      return 0;
    }
  }

  void AccumulateReplay(std::size_t worker, std::size_t shard,
                        std::uint64_t begin_ns) {
    if constexpr (obs::MetricsEnabled()) {
      Tally& tally = tallies_[worker];
      if (tally.shard_ns.empty()) {
        tally.shard_ns.assign(partition_.num_shards, 0);
      }
      tally.shard_ns[shard] += obs::Tracing::NowNanos() - begin_ns;
    } else {
      (void)worker;
      (void)shard;
      (void)begin_ns;
    }
  }

  /// Moves the per-worker tallies into one BatchStats, zeroing them so a
  /// second drain (the destructor backstop) reports nothing.
  BlockOps::BatchStats Drain() {
    BlockOps::BatchStats stats;
    stats.shard_replay_ms.assign(partition_.num_shards, 0.0);
    for (Tally& tally : tallies_) {
      stats.cut_frontier_words += tally.cut_words;
      stats.exchange_rounds += tally.rounds;
      for (std::size_t s = 0; s < tally.shard_ns.size(); ++s) {
        stats.shard_replay_ms[s] +=
            static_cast<double>(tally.shard_ns[s]) / 1e6;
      }
      tally = Tally{};
    }
    return stats;
  }

  /// A node's authoritative mask lives in its owner shard (all its
  /// in-edges are materialized there).
  std::uint64_t OwnerMask(std::vector<BatchReachabilityWorkspace>& ws,
                          NodeId v) const {
    return ws[partition_.shard_of[v]].ReachedMask(partition_.local_of[v]);
  }

  const std::uint64_t* OwnerStripMask(
      std::vector<std::unique_ptr<StripWorkspace>>& ws, NodeId v) const {
    return ws[partition_.shard_of[v]]->ReachedMask(partition_.local_of[v]);
  }

  /// Runs the per-shard propagation / cut-frontier exchange loop for one
  /// block until no shard has pending lanes. Monotone mask growth makes
  /// the fixpoint unique, so sweep order cannot affect the result.
  void Exchange(std::size_t worker, std::size_t block,
                const std::vector<NodeId>& sources, std::uint64_t lanes) {
    std::vector<BatchReachabilityWorkspace>& ws = scratch_[worker];
    const GraphPartition& p = partition_;
    const std::uint32_t num_shards = p.num_shards;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      ws[s].Begin(p.shards[s].graph);
    }
    std::vector<std::uint8_t>& dirty = dirty_[worker];
    std::fill(dirty.begin(), dirty.end(), 0);
    // A source is seeded at its owner and at every ghost copy: its
    // out-edges with a foreign dst live in the dst's shard and relax from
    // the ghost.
    for (const NodeId v : sources) {
      ws[p.shard_of[v]].Seed(p.local_of[v], lanes);
      dirty[p.shard_of[v]] = 1;
      for (EdgeId i = p.ghost_first[v]; i < p.ghost_first[v + 1]; ++i) {
        ws[p.ghost_targets[i]].Seed(p.ghost_locals[i], lanes);
        dirty[p.ghost_targets[i]] = 1;
      }
    }
    std::uint64_t delivered = 0;
    std::uint64_t rounds = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      ++rounds;
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        if (dirty[s] == 0) continue;
        dirty[s] = 0;
        progressed = true;
        const std::uint64_t begin_ns = ReplayClock();
        ws[s].Propagate(views_[s]->BlockWords(block));
        // Deliver every touched owned node's mask to its ghost copies;
        // the receiving shard continues from exactly the fresh lanes.
        const ShardGraph& shard = p.shards[s];
        for (const NodeId lv : ws[s].TouchedNodes()) {
          if (lv >= shard.num_owned) continue;
          const NodeId v = shard.node_to_parent[lv];
          EdgeId gi = p.ghost_first[v];
          const EdgeId gend = p.ghost_first[v + 1];
          if (gi == gend) continue;
          const std::uint64_t mask = ws[s].ReachedMask(lv);
          for (; gi < gend; ++gi) {
            const std::uint32_t gs = p.ghost_targets[gi];
            const std::uint64_t fresh =
                mask & ~ws[gs].ReachedMask(p.ghost_locals[gi]);
            if (fresh == 0) continue;
            ws[gs].Seed(p.ghost_locals[gi], fresh);
            dirty[gs] = 1;
            ++delivered;
          }
        }
        AccumulateReplay(worker, s, begin_ns);
      }
    }
    tallies_[worker].cut_words += delivered;
    tallies_[worker].rounds += rounds;
  }

  /// Exchange() with every lane mask widened to a strip_words_-word span:
  /// an owned node that gains lanes in any word of the strip delivers the
  /// per-word fresh delta to its ghost copies. Same unique fixpoint (OR is
  /// monotone per word), so shard answers stay bit-identical to the
  /// single engine at every width.
  void StripExchange(std::size_t worker, std::size_t strip,
                     const std::vector<NodeId>& sources,
                     const std::uint64_t* lanes) {
    auto& ws = (*strip_scratch_)[worker];
    const GraphPartition& p = partition_;
    const std::uint32_t num_shards = p.num_shards;
    const unsigned wn = strip_words_;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      ws[s]->Begin(p.shards[s].graph);
    }
    std::vector<std::uint8_t>& dirty = dirty_[worker];
    std::fill(dirty.begin(), dirty.end(), 0);
    for (const NodeId v : sources) {
      ws[p.shard_of[v]]->Seed(p.local_of[v], lanes);
      dirty[p.shard_of[v]] = 1;
      for (EdgeId i = p.ghost_first[v]; i < p.ghost_first[v + 1]; ++i) {
        ws[p.ghost_targets[i]]->Seed(p.ghost_locals[i], lanes);
        dirty[p.ghost_targets[i]] = 1;
      }
    }
    std::uint64_t delivered = 0;
    std::uint64_t rounds = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      ++rounds;
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        if (dirty[s] == 0) continue;
        dirty[s] = 0;
        progressed = true;
        const std::uint64_t begin_ns = ReplayClock();
        ws[s]->Propagate((*strip_planes_)[s]->StripWords(strip));
        const ShardGraph& shard = p.shards[s];
        for (const NodeId lv : ws[s]->TouchedNodes()) {
          if (lv >= shard.num_owned) continue;
          const NodeId v = shard.node_to_parent[lv];
          EdgeId gi = p.ghost_first[v];
          const EdgeId gend = p.ghost_first[v + 1];
          if (gi == gend) continue;
          const std::uint64_t* mask = ws[s]->ReachedMask(lv);
          for (; gi < gend; ++gi) {
            const std::uint32_t gs = p.ghost_targets[gi];
            const std::uint64_t* ghost = ws[gs]->ReachedMask(p.ghost_locals[gi]);
            std::uint64_t fresh[kMaxStripWords];
            std::uint64_t any = 0;
            for (unsigned w = 0; w < wn; ++w) {
              fresh[w] = mask[w] & ~ghost[w];
              any |= fresh[w];
            }
            if (any == 0) continue;
            ws[gs]->Seed(p.ghost_locals[gi], fresh);
            dirty[gs] = 1;
            // Tally actual words carried, so the cut-traffic counter stays
            // comparable across widths.
            delivered += wn;
          }
        }
        AccumulateReplay(worker, s, begin_ns);
      }
    }
    tallies_[worker].cut_words += delivered;
    tallies_[worker].rounds += rounds;
  }

  const GraphPartition& partition_;
  const std::vector<std::shared_ptr<const ShardView>>& views_;
  std::vector<std::vector<BatchReachabilityWorkspace>>& scratch_;
  const std::vector<std::shared_ptr<const StripPlane>>* strip_planes_;
  std::vector<std::vector<std::unique_ptr<StripWorkspace>>>* strip_scratch_;
  const unsigned strip_words_;
  /// Per-worker scratch, hoisted out of the per-block hot path.
  std::vector<std::vector<std::uint8_t>> dirty_;
  std::vector<std::vector<NodeId>> src_;
  std::vector<Tally> tallies_;
  /// Query id of the scan group currently running (set by BeginGroup from
  /// the plan-driving thread, between parallel scans).
  std::uint64_t current_query_id_ = 0;
  /// Trace-epoch timestamp of batch entry, anchoring the synthetic
  /// per-shard replay spans.
  std::uint64_t batch_begin_ns_ = 1;
};

/// write(2) loop that cannot raise SIGPIPE on sockets (MSG_NOSIGNAL, with
/// a plain-write fallback for pipes — CLI installs SIG_IGN for those).
bool WriteAllQuiet(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t put = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put < 0 && errno == ENOTSOCK) {
      put = write(fd, data.data() + off, data.size() - off);
    }
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

/// A serialized NDJSON error response for `line`, echoing its request id
/// when the line parses.
std::string ErrorResponseFor(const std::string& line, const Status& status) {
  auto request = ParseRequestLine(line);
  if (!request.ok()) return SerializeParseError(status);
  QueryResult result;
  result.status = status;
  return SerializeResult(*request, result);
}

}  // namespace

ShardedQueryEngine::ShardedQueryEngine(
    std::shared_ptr<const DirectedGraph> graph, std::shared_ptr<ShardSet> shards,
    QueryEngineOptions options)
    : graph_(std::move(graph)),
      shards_(std::move(shards)),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  const GraphPartition& p = shards_->partition();
  scratch_.reserve(pool_->size());
  for (std::size_t t = 0; t < pool_->size(); ++t) {
    std::vector<BatchReachabilityWorkspace> per_shard;
    per_shard.reserve(p.num_shards);
    for (const ShardGraph& shard : p.shards) {
      per_shard.emplace_back(shard.graph);
    }
    scratch_.push_back(std::move(per_shard));
  }
  // Strip scratch stays null until a batch resolves a multi-word width.
  strip_scratch_.resize(pool_->size());
  for (auto& per_shard : strip_scratch_) per_shard.resize(p.num_shards);
}

Result<ShardedQueryEngine> ShardedQueryEngine::Create(
    std::shared_ptr<const DirectedGraph> graph, std::shared_ptr<ShardSet> shards,
    QueryEngineOptions options) {
  IF_CHECK(graph != nullptr) << "null graph";
  IF_CHECK(shards != nullptr) << "null shard set";
  IF_RETURN_NOT_OK(options.Validate());
  if (shards->partition().shard_of.size() != graph->num_nodes()) {
    return Status::InvalidArgument(
        "partition covers ", shards->partition().shard_of.size(),
        " nodes but the graph has ", graph->num_nodes());
  }
  return ShardedQueryEngine(std::move(graph), std::move(shards), options);
}

std::vector<QueryResult> ShardedQueryEngine::AnswerBatch(
    const BankGeneration& bank, const std::vector<QueryRequest>& requests) {
  // The exact dispatch the single engine runs (same class, same options),
  // so shard-vs-single answers stay byte-identical per backend: analytic
  // answers never touch the shard machinery at all.
  std::vector<QueryResult> results(requests.size());
  BackendDispatcher dispatcher(*graph_, options_);
  const std::vector<std::size_t> bank_indices =
      dispatcher.Partition(bank, requests, results);
  // One consistent cut across shards: all views belong to bank.id(), so a
  // refresh landing mid-batch cannot mix generations between shards.
  const std::vector<std::shared_ptr<const ShardView>> views =
      shards_->AcquireAll(bank);
  // Resolve the replay width exactly like the single engine (same options,
  // same bank, and the *parent* graph's size for the kAuto cache cap — not
  // the smaller per-shard subgraphs — so every shard count lands on the
  // same width) and shard-vs-single answers compare strips to strips at
  // every --lanes setting.
  const unsigned strip_words =
      ResolveStripWords(options_.lanes, bank.num_rows(), graph_->num_nodes(),
                        graph_->num_edges());
  std::vector<std::shared_ptr<const StripPlane>> strip_planes;
  if (strip_words > 1) {
    strip_planes.reserve(views.size());
    for (const auto& view : views) {
      strip_planes.push_back(view->AcquireStripPlane(strip_words, bank));
    }
    const GraphPartition& p = shards_->partition();
    for (auto& per_shard : strip_scratch_) {
      for (std::size_t s = 0; s < per_shard.size(); ++s) {
        if (per_shard[s] == nullptr || per_shard[s]->words() != strip_words) {
          per_shard[s] = StripWorkspace::Create(strip_words,
                                                p.shards[s].graph);
        }
      }
    }
  }
  obs::GetGauge("reach.strip_width").Set(64.0 * strip_words);
  ShardedOps ops(shards_->partition(), views, scratch_,
                 strip_words > 1 ? &strip_planes : nullptr,
                 strip_words > 1 ? &strip_scratch_ : nullptr, strip_words);
  QueryPlanOptions plan;
  plan.min_conditional_rows = options_.min_conditional_rows;
  plan.rows_per_task = options_.rows_per_task;
  if (bank_indices.size() == requests.size()) {
    BackendDispatcher::Merge(bank_indices,
                             RunQueryPlan(*graph_, bank, requests, plan,
                                          *pool_, ops),
                             results);
    return results;
  }
  std::vector<QueryRequest> bank_requests;
  bank_requests.reserve(bank_indices.size());
  for (const std::size_t j : bank_indices) {
    bank_requests.push_back(requests[j]);
  }
  BackendDispatcher::Merge(bank_indices,
                           RunQueryPlan(*graph_, bank, bank_requests, plan,
                                        *pool_, ops),
                           results);
  return results;
}

struct ProcessRouter::Child {
  int fd = -1;
  std::unique_ptr<LineReader> reader;
  bool alive = true;
};

ProcessRouter::ProcessRouter(std::vector<int> child_fds, Options options)
    : options_(options) {
  IF_CHECK(!child_fds.empty()) << "router needs at least one child";
  children_.reserve(child_fds.size());
  for (const int fd : child_fds) {
    Child child;
    child.fd = fd;
    child.reader = std::make_unique<LineReader>(fd);
    children_.push_back(std::move(child));
  }
}

ProcessRouter::~ProcessRouter() {
  for (Child& child : children_) {
    if (child.fd >= 0) close(child.fd);
  }
}

std::size_t ProcessRouter::num_live_children() const {
  std::size_t live = 0;
  for (const Child& child : children_) {
    if (child.alive) ++live;
  }
  return live;
}

void ProcessRouter::MarkChildDead(std::size_t k) {
  if (!children_[k].alive) return;
  children_[k].alive = false;
  obs::GetCounter("router.child_failures_total").Increment();
  obs::GetCounter("router.child_failures_total.replica" + std::to_string(k))
      .Increment();
}

std::vector<std::string> ProcessRouter::Broadcast(const std::string& line) {
  std::vector<std::string> responses(children_.size());
  for (std::size_t k = 0; k < children_.size(); ++k) {
    if (!children_[k].alive) continue;
    if (!WriteAllQuiet(children_[k].fd, line + "\n")) MarkChildDead(k);
  }
  WallTimer timer;
  for (std::size_t k = 0; k < children_.size(); ++k) {
    if (!children_[k].alive) continue;
    std::string response;
    bool ok;
    bool timed_out = false;
    if (options_.child_timeout_ms > 0.0) {
      const double left = options_.child_timeout_ms - timer.Millis();
      ok = children_[k].reader->NextLineWithin(response, left, timed_out);
    } else {
      ok = children_[k].reader->NextLine(response);
    }
    if (ok) {
      responses[k] = std::move(response);
    } else {
      MarkChildDead(k);
    }
  }
  return responses;
}

std::string ProcessRouter::MergedTraceExport() {
  if (obs::Tracing::IsEnabled()) {
    const std::vector<std::string> exports =
        Broadcast("{\"id\":\"__trace__\",\"trace\":{\"export\":true}}");
    for (std::size_t k = 0; k < exports.size(); ++k) {
      if (exports[k].empty()) continue;
      auto json = ParseJson(exports[k]);
      if (!json.ok()) continue;
      const JsonValue* trace = json->Find("trace");
      if (trace == nullptr) continue;
      const JsonValue* events = trace->Find("traceEvents");
      if (events == nullptr || !events->is_array()) continue;
      // Replica k's spans re-home to pid k+2 (the router itself is pid 1);
      // tid and timestamps carry over — each process has its own trace
      // epoch, so cross-process alignment is approximate by design.
      for (const JsonValue& event : events->AsArray()) {
        const JsonValue* name = event.Find("name");
        const JsonValue* tid = event.Find("tid");
        const JsonValue* ts = event.Find("ts");
        const JsonValue* dur = event.Find("dur");
        if (name == nullptr || !name->is_string() || ts == nullptr ||
            !ts->is_number() || dur == nullptr || !dur->is_number()) {
          continue;
        }
        std::uint64_t query_id = 0;
        if (const JsonValue* args = event.Find("args")) {
          if (const JsonValue* qid = args->Find("query_id")) {
            if (qid->is_number() && qid->AsNumber() >= 0) {
              query_id = static_cast<std::uint64_t>(qid->AsNumber());
            }
          }
        }
        obs::Tracing::ImportSpan(
            name->AsString(), static_cast<std::uint32_t>(k + 2),
            tid != nullptr && tid->is_number()
                ? static_cast<std::uint32_t>(tid->AsNumber())
                : 0,
            ts->AsNumber(), dur->AsNumber(), query_id);
      }
    }
  }
  return obs::Tracing::ExportChromeJson();
}

std::string ProcessRouter::HandleAdminLine(const std::string& line) {
  auto json = ParseJson(line);
  if (!json.ok()) return SerializeParseError(json.status());
  auto request = ParseAdminRequest(*json);
  if (!request.ok()) {
    return SerializeAdminError(AdminRequest{}, request.status());
  }
  JsonValue::Object response;
  response["id"] = request->id;
  response["ok"] = true;
  switch (request->verb) {
    case AdminRequest::Verb::kStats: {
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::Global().Snapshot();
      auto stats = ParseJson(snap.ToJson());
      IF_CHECK(stats.ok()) << "metrics snapshot must serialize as JSON";
      response["stats"] = std::move(*stats);
      response["prometheus"] = snap.ToPrometheus();
      break;
    }
    case AdminRequest::Verb::kHealth: {
      JsonValue::Object health;
      health["role"] = "router";
      health["num_replicas"] = static_cast<double>(children_.size());
      health["num_live_replicas"] = static_cast<double>(num_live_children());
      JsonValue::Array replicas;
      // Dead replicas stay listed (alive:false) so exclusion after a
      // child death is visible to the scraper, not silently elided.
      for (std::size_t k = 0; k < children_.size(); ++k) {
        JsonValue::Object replica;
        replica["replica"] = static_cast<double>(k);
        replica["alive"] = children_[k].alive;
        replicas.push_back(std::move(replica));
      }
      health["replicas"] = std::move(replicas);
      // Per-replica health rides along so one verb answers both layers.
      const std::vector<std::string> child_health =
          Broadcast("{\"id\":\"__health__\",\"health\":true}");
      JsonValue::Array details;
      for (const std::string& entry : child_health) {
        if (entry.empty()) {
          details.push_back(JsonValue());
          continue;
        }
        auto parsed = ParseJson(entry);
        details.push_back(parsed.ok() ? std::move(*parsed) : JsonValue());
      }
      health["replica_health"] = std::move(details);
      response["health"] = std::move(health);
      break;
    }
    case AdminRequest::Verb::kTraceEnable:
      obs::Tracing::Enable(request->trace_capacity != 0
                               ? request->trace_capacity
                               : std::size_t{1} << 14);
      Broadcast(line);
      response["trace"] = "enabled";
      break;
    case AdminRequest::Verb::kTraceDisable:
      obs::Tracing::Disable();
      Broadcast(line);
      response["trace"] = "disabled";
      break;
    case AdminRequest::Verb::kTraceExport: {
      auto exported = ParseJson(MergedTraceExport());
      IF_CHECK(exported.ok()) << "trace export must serialize as JSON";
      response["trace"] = std::move(*exported);
      break;
    }
  }
  return JsonValue(std::move(response)).Dump();
}

std::vector<std::string> ProcessRouter::RouteBatch(
    const std::vector<std::string>& lines) {
  obs::GetCounter("router.proc_batches_total").Increment();
  WallTimer timer;
  std::vector<std::string> responses(lines.size());
  // Preprocess: admin verbs are answered by the router itself (the only
  // place replica liveness is known); query lines arriving without a
  // query_id get one minted and injected so replica spans join the same
  // trace tree. Unparseable lines are forwarded untouched — a child
  // serializes the parse error exactly as before.
  std::vector<std::string> routed(lines);
  std::vector<char> handled(lines.size(), 0);
  std::uint64_t batch_query_id = 0;
  for (std::size_t j = 0; j < lines.size(); ++j) {
    auto json = ParseJson(lines[j]);
    if (!json.ok() || !json->is_object()) continue;
    if (IsAdminRequest(*json)) {
      responses[j] = HandleAdminLine(lines[j]);
      handled[j] = 1;
      continue;
    }
    if (IsIngestRequest(*json)) continue;
    if (json->Find("query_id") == nullptr) {
      const std::uint64_t query_id = MintQueryId();
      if (batch_query_id == 0) batch_query_id = query_id;
      json->MutableObject()["query_id"] = static_cast<double>(query_id);
      routed[j] = json->Dump();
    }
  }
  obs::TraceSpan span("router/route_batch", batch_query_id);
  // Round-robin assignment over the live children, continuing where the
  // previous batch left off so single-line batches still spread.
  std::vector<std::vector<std::size_t>> assigned(children_.size());
  for (std::size_t j = 0; j < lines.size(); ++j) {
    if (handled[j] != 0) continue;
    std::size_t probe = 0;
    for (; probe < children_.size(); ++probe) {
      const std::size_t k = (next_child_ + probe) % children_.size();
      if (children_[k].alive) {
        assigned[k].push_back(j);
        next_child_ = (k + 1) % children_.size();
        break;
      }
    }
    if (probe == children_.size()) {
      responses[j] = ErrorResponseFor(
          routed[j], Status::IOError("no shard children alive"));
    }
  }
  // Write every child its lines first, then collect: children crunch their
  // slices concurrently while the router drains them one by one.
  for (std::size_t k = 0; k < children_.size(); ++k) {
    if (assigned[k].empty() || !children_[k].alive) continue;
    std::string blob;
    for (const std::size_t j : assigned[k]) {
      blob += routed[j];
      blob += '\n';
    }
    if (!WriteAllQuiet(children_[k].fd, blob)) {
      MarkChildDead(k);
      for (const std::size_t j : assigned[k]) {
        responses[j] = ErrorResponseFor(
            routed[j], Status::IOError("shard child ", k,
                                       " rejected the batch (broken pipe): ",
                                       std::strerror(errno)));
      }
    }
  }
  for (std::size_t k = 0; k < children_.size(); ++k) {
    if (assigned[k].empty() || !children_[k].alive) continue;
    for (std::size_t a = 0; a < assigned[k].size(); ++a) {
      const std::size_t j = assigned[k][a];
      std::string line;
      bool ok;
      bool timed_out = false;
      if (options_.child_timeout_ms > 0.0) {
        const double left = options_.child_timeout_ms - timer.Millis();
        ok = children_[k].reader->NextLineWithin(line, left, timed_out);
      } else {
        ok = children_[k].reader->NextLine(line);
      }
      if (ok) {
        responses[j] = std::move(line);
        continue;
      }
      // EOF mid-batch (the child died) or deadline expiry (the response
      // stream can no longer be trusted to stay aligned): fail this and
      // every later line assigned to the child, descriptively.
      MarkChildDead(k);
      const Status status =
          timed_out
              ? Status::DeadlineExceeded("shard child ", k, " exceeded the ",
                                         options_.child_timeout_ms,
                                         " ms router deadline mid-batch")
              : Status::IOError("shard child ", k, " died mid-batch");
      for (; a < assigned[k].size(); ++a) {
        responses[assigned[k][a]] = ErrorResponseFor(routed[assigned[k][a]],
                                                     status);
      }
      break;
    }
  }
  return responses;
}

Status ProcessRouter::Serve(int in_fd, int out_fd) {
  LineReader reader(in_fd, options_.interrupt);
  std::string line;
  std::vector<std::string> lines;
  while (reader.NextLine(line)) {
    lines.clear();
    lines.push_back(std::move(line));
    while (lines.size() < options_.max_batch && reader.TryNextLine(line)) {
      lines.push_back(std::move(line));
    }
    const std::vector<std::string> responses = RouteBatch(lines);
    std::string out;
    for (const std::string& response : responses) {
      out += response;
      out += '\n';
    }
    if (!WriteAllQuiet(out_fd, out)) {
      return Status::IOError("short write to fd ", out_fd, ": ",
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace infoflow::serve
