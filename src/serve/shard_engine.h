/// \file shard_engine.h
/// \brief Per-shard bank views with generation-swap (RCU) discipline.
///
/// Each shard answers reachability over its own local graph
/// (serve/partition.h), which needs the bank's edge-major plane *gathered*
/// into the shard's local edge order: shard plane word [b·m_s + le] =
/// parent plane word [b·M + edge_to_parent[le]]. A ShardView is that
/// gathered plane for one BankGeneration — immutable once built, published
/// by shared_ptr swap exactly like the bank's own generations, so readers
/// holding an old view are never invalidated and a query batch that
/// acquired generation g sees every shard's plane for g (no torn
/// generation across shards).
///
/// Because every shard view is a projection of ONE global bank (the same
/// seeded chains the single-engine path reads), shard-merged answers can be
/// bit-identical to the single engine — per-shard independent banks could
/// not be, since MH proposals index edges globally. The shared-nothing
/// variant (full replica per child process, serve/router.h) instead relies
/// on same-seed determinism of the whole bank.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/strip_plane.h"
#include "serve/partition.h"
#include "serve/sample_bank.h"
#include "util/status.h"

namespace infoflow::serve {

/// \brief One shard's gathered edge-major plane for one bank generation.
class ShardView {
 public:
  /// Generation id the plane was gathered from.
  std::uint64_t generation() const { return generation_; }

  /// Edge-major words of block `b` in shard-local edge order (m_s words).
  const std::uint64_t* BlockWords(std::size_t b) const {
    return plane_.data() + b * num_edges_;
  }

  /// \brief The W-word strip-major interleave of this view's gathered
  /// plane (width ∈ {4, 8}), for multi-word replay over the shard's local
  /// graph. Interleaved lazily on first acquisition and cached per width
  /// with the same keep-one-winner publish as the bank's own
  /// AcquireStripPlane; `bank` must be the generation this view was
  /// gathered from (it supplies the ragged-tail lane masks). Thread-safe.
  std::shared_ptr<const StripPlane> AcquireStripPlane(
      unsigned width, const BankGeneration& bank) const;

 private:
  friend class ShardEngine;
  ShardView(std::uint64_t generation, std::size_t num_edges)
      : generation_(generation), num_edges_(num_edges) {}

  std::uint64_t generation_;
  std::size_t num_edges_;
  std::vector<std::uint64_t> plane_;
  /// Lazily interleaved strip planes, slot 0 → W=4, slot 1 → W=8.
  mutable std::mutex strip_mutex_;
  mutable std::shared_ptr<const StripPlane> strip_planes_[2];
};

/// \brief Owns one shard's current view; thread-safe view acquisition.
///
/// AcquireView is called per query batch (cheap pointer copy when the
/// generation is unchanged) and eagerly by ShardSet::Prime when the server
/// publishes a refresh/rebuild — the epoch fan-out that keeps a new
/// generation from paying its gather cost on the first query's latency.
class ShardEngine {
 public:
  /// `shard` must outlive the engine (it is owned by the GraphPartition the
  /// ShardSet holds).
  explicit ShardEngine(const ShardGraph& shard) : shard_(&shard) {}

  /// The shard's local graph and maps.
  const ShardGraph& shard() const { return *shard_; }

  /// \brief Returns the view of `bank`'s rows, gathering (and publishing)
  /// it if this generation has not been seen yet. Never invalidates views
  /// other readers still hold.
  std::shared_ptr<const ShardView> AcquireView(const BankGeneration& bank);

 private:
  const ShardGraph* shard_;
  std::mutex mutex_;
  std::shared_ptr<const ShardView> current_;
};

/// \brief The partition plus one ShardEngine per shard — what a sharded
/// server shares between its connections.
class ShardSet {
 public:
  /// Builds the per-shard engines over `partition` (taken by shared_ptr so
  /// routers and tests can inspect the maps).
  explicit ShardSet(std::shared_ptr<const GraphPartition> partition);

  const GraphPartition& partition() const { return *partition_; }
  std::uint32_t num_shards() const { return partition_->num_shards; }

  /// Views of every shard for `bank`'s generation, index = shard id.
  std::vector<std::shared_ptr<const ShardView>> AcquireAll(
      const BankGeneration& bank);

  /// \brief Epoch fan-out: eagerly gathers every shard's view of `bank` so
  /// a freshly published generation (refresh or drift rebuild) is warm on
  /// all shards before the next query batch arrives.
  void Prime(const BankGeneration& bank) { (void)AcquireAll(bank); }

 private:
  std::shared_ptr<const GraphPartition> partition_;
  std::vector<std::unique_ptr<ShardEngine>> engines_;
};

}  // namespace infoflow::serve
