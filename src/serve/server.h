/// \file server.h
/// \brief The long-running `infoflow serve` daemon: NDJSON query batches
/// over stdin/stdout and an optional Unix-domain socket, against one shared
/// SampleBank.
///
/// Batching: the serve loop blocks for one request line, then greedily
/// drains whatever further complete lines the client has already written
/// (up to `max_batch`) into a single QueryEngine::AnswerBatch call — a
/// client that pipes a file of queries gets them answered in large shared
/// batches (one row scan per distinct source frontier), while an
/// interactive client still gets per-line latency.
///
/// Concurrency: each connection (and the stdio loop) gets its own
/// QueryEngine over the shared bank; a background thread refreshes the
/// bank on a fixed interval, swapping generations without ever blocking
/// readers (see sample_bank.h).

#pragma once

#include <csignal>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "seedmax/rr_index.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "serve/shard_engine.h"
#include "stream/ingestor.h"
#include "util/status.h"

namespace infoflow::serve {

struct AdminRequest;  // protocol.h
struct TopkRequest;   // protocol.h

/// \brief Daemon tuning.
struct ServerOptions {
  /// Max request lines folded into one engine batch.
  std::size_t max_batch = 64;
  /// Unix-domain socket to listen on; empty → stdio only. An existing file
  /// at the path is replaced.
  std::string socket_path;
  /// Background bank-refresh period; 0 → the bank is never refreshed.
  double refresh_interval_ms = 0.0;
  /// When an ingestor is attached: a published ModelEpoch whose max-|Δp|
  /// drift exceeds this triggers a background SampleBank::Rebuild onto the
  /// new model. 0 (the default) rebuilds on any nonzero drift.
  double drift_threshold = 0.0;
  /// Shards to partition the graph into (serve/partition.h). 1 (the
  /// default) degenerates to the single-engine path — no partitioner, no
  /// router, byte-identical behavior to a pre-sharding server. Answers are
  /// bit-identical for every N (tests/test_shard.cc).
  std::size_t num_shards = 1;
  /// Partitioner seed (deterministic communities under a fixed seed).
  std::uint64_t partition_seed = 7;
  /// Per-connection query-engine tuning.
  QueryEngineOptions engine;
  /// Period of the background metrics-snapshot writer (the CLI's
  /// `--stats-every`); 0 → no periodic writer. Requires stats_path.
  double stats_interval_ms = 0.0;
  /// File the periodic writer (and Stop()) writes the metrics snapshot
  /// JSON to, atomically via rename.
  std::string stats_path;
  /// Queries whose batch latency reaches this many milliseconds (or that
  /// die on a deadline) are appended to the slow-query log; 0 → off.
  /// Requires slow_query_path. Schema documented in README.
  double slow_query_ms = 0.0;
  /// NDJSON file the slow-query log appends to (opened lazily).
  std::string slow_query_path;
  /// When set, serve loops treat `*interrupt != 0` as EOF on their input:
  /// the CLI points this at its SIGTERM/SIGINT flag so a signalled daemon
  /// unwinds cleanly and still writes its metrics artifacts.
  const volatile std::sig_atomic_t* interrupt = nullptr;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief Owns the bank, the listener, and the refresh thread.
class Server {
 public:
  static Result<Server> Create(SampleBank bank, ServerOptions options);

  // Defined in server.cc, where Background is complete.
  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  ~Server();

  /// \brief Serves NDJSON batches read from `in_fd` to `out_fd` until EOF
  /// (one response line per request line, in order; unparseable lines get
  /// an error response with a null id). Blocking; returns once the peer
  /// closes or on an unrecoverable I/O error.
  Status ServeFd(int in_fd, int out_fd);

  /// ServeFd over stdin/stdout — the `infoflow serve` foreground loop.
  Status ServeStdio() { return ServeFd(0, 1); }

  /// \brief Connects a streaming ingestor: the serve loops accept
  /// `{"ingest": ...}` lines (absorbed synchronously), and every published
  /// ModelEpoch whose drift exceeds `drift_threshold` queues a background
  /// bank rebuild onto the new model — in-flight queries keep answering
  /// from the generation they acquired, the next batch sees the new rows.
  /// Must be called before Start().
  void AttachIngestor(std::shared_ptr<stream::StreamIngestor> ingestor);

  /// The attached ingestor (null when serving a static model).
  const std::shared_ptr<stream::StreamIngestor>& ingestor() const {
    return ingestor_;
  }

  /// \brief Starts the background threads: the Unix-socket accept loop
  /// (when socket_path is set), the bank refresher (when
  /// refresh_interval_ms > 0), and the drift-rebuild worker (when an
  /// ingestor is attached). Idempotent per server.
  Status Start();

  /// Stops the background threads and joins open connections. An attached
  /// ingestor's feed is stopped and its epoch callback detached; the
  /// rebuild worker is joined only after every epoch source is quiet, so a
  /// pending drift-triggered rebuild — including one raised by the last
  /// line of a draining connection or feed — is applied before returning
  /// and a post-Stop metrics snapshot deterministically reflects every
  /// absorbed epoch. Called by the destructor.
  void Stop();

  /// The shared bank (e.g. for warm-up checks in tests).
  SampleBank& bank() { return bank_; }

  /// The shared shard set (null when num_shards == 1). Generation
  /// publishes (refresh / drift rebuild) fan out to every shard's view
  /// through it before the next batch is answered.
  const std::shared_ptr<ShardSet>& shard_set() const { return shard_set_; }

  const ServerOptions& options() const { return options_; }

  /// The reverse-reachable sketch index behind the {"topk":...} verb.
  /// Lazily inverts the bank's current generation on the first top-k
  /// request; refresh / drift-rebuild publishes re-prime it (only once a
  /// sketch set was ever built) so streamed evidence invalidates sketches.
  const std::shared_ptr<seedmax::RrIndex>& rr_index() const {
    return rr_index_;
  }

 private:
  Server(SampleBank bank, ServerOptions options);

  void AcceptLoop();
  void RefreshLoop();
  void RebuildLoop();
  void StatsLoop();

  /// Writes the current metrics snapshot to options_.stats_path (tmp +
  /// rename, so scrapers never read a torn file).
  void WriteStatsSnapshot();

  /// Answers one parsed admin verb ({"stats"} / {"health"} / {"trace"}).
  std::string HandleAdmin(const AdminRequest& request);

  /// Answers one parsed {"topk":...} seed-selection request against the
  /// current bank generation (cached sketches for the unconstrained case,
  /// an ad-hoc conditioned/community build otherwise).
  std::string HandleTopk(const TopkRequest& request);

  /// Appends one NDJSON record per slow (or deadline-dead) result to the
  /// slow-query log; no-op unless options_.slow_query_ms > 0.
  void LogSlowQueries(const std::vector<QueryRequest>& requests,
                      const std::vector<QueryResult>& results);

  /// Epoch-callback target: queues `epoch` for the rebuild worker.
  void RequestRebuild(std::shared_ptr<const stream::ModelEpoch> epoch);

  SampleBank bank_;
  ServerOptions options_;
  /// Partition + per-shard view caches, shared by every connection's
  /// router; null in single-engine mode.
  std::shared_ptr<ShardSet> shard_set_;
  /// Sketch cache for top-k seed selection; shared with connections.
  std::shared_ptr<seedmax::RrIndex> rr_index_;
  std::shared_ptr<stream::StreamIngestor> ingestor_;

  /// Thread state lives behind a pointer so the server stays movable
  /// (Result<Server>); defined in server.cc.
  struct Background;
  std::unique_ptr<Background> background_;

  obs::Counter* metric_batches_;
  obs::Counter* metric_lines_;
  obs::Counter* metric_connections_;
  obs::Counter* metric_ingest_lines_;
  obs::Counter* metric_rebuilds_triggered_;
  obs::Counter* metric_admin_requests_;
  obs::Counter* metric_topk_requests_;
  obs::Counter* metric_slow_queries_;
  obs::Gauge* metric_qps_;
  obs::Histogram* metric_batch_lines_;
};

}  // namespace infoflow::serve
