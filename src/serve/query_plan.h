/// \file query_plan.h
/// \brief The engine-agnostic batch query skeleton shared by the single
/// (QueryEngine) and sharded (ShardedQueryEngine) serve paths.
///
/// Everything about answering a batch *except* per-block reachability is
/// pure bookkeeping over the bank's row/lane layout: request validation,
/// deduplicating conditioning sets into shared row masks (Eq. 7–8),
/// enforcing the conditional floor, merging same-source frontiers into one
/// scan, per-query deadlines, and assembling estimates + split-R̂/ESS/MCSE
/// diagnostics from the indicator bitmaps. RunQueryPlan owns that skeleton;
/// the caller plugs in a BlockOps that answers two questions about a single
/// 64-row block. Because the sharded engine reuses the exact assembly code
/// and only swaps the block ops — and its cross-shard fixpoint computes the
/// same reached masks as a whole-graph BFS — shard-merged answers are
/// bit-identical to the single-engine path, which tests/test_shard.cc
/// checks differentially.

#pragma once

#include <cstdint>
#include <vector>

#include "core/flow_query.h"
#include "graph/graph.h"
#include "serve/query_engine.h"
#include "serve/sample_bank.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoflow::serve {

/// \brief Per-block query primitives supplied by an engine. Methods are
/// called concurrently from pool workers; `worker` < pool.size() indexes
/// the caller's per-worker scratch (workspaces). Blocks are partitioned
/// between workers, so no block is touched by two workers at once.
class BlockOps {
 public:
  virtual ~BlockOps() = default;

  /// \brief What one batch cost beyond row scans — the sharded engine
  /// reports its cut-frontier exchange work here; the single engine has
  /// none. Stamped onto every result of the batch (batch attribution).
  struct BatchStats {
    std::uint64_t exchange_rounds = 0;
    std::uint64_t cut_frontier_words = 0;
    /// Per-shard replay wall-clock summed over workers, milliseconds;
    /// empty on the single engine.
    std::vector<double> shard_replay_ms;
  };

  /// Called once before each scan group's parallel row scan, with the
  /// query id attributed to that scan (0 when unstamped). Engines use it
  /// to tag per-shard replay spans; the default ignores it.
  virtual void BeginGroup(std::uint64_t query_id) { (void)query_id; }

  /// Called once after all scans of a batch; returns (and resets) the
  /// batch's accumulated stats. The default reports nothing.
  virtual BatchStats CollectBatchStats() { return {}; }

  /// Lanes of `block` (restricted to `lanes`) whose rows satisfy every
  /// condition: the blockwise conditional indicator I(x, C) of Eq. 7–8.
  virtual std::uint64_t BlockConditions(std::size_t worker, std::size_t block,
                                        const FlowConditions& conditions,
                                        std::uint64_t lanes) = 0;

  /// Reachability from the (sorted-unique) `sources` in each lane of
  /// `block` restricted to `lanes`: sets out[s] to the mask of lanes in
  /// which sinks[s] is reached. `sinks` is sorted-unique.
  virtual void BlockReach(std::size_t worker, std::size_t block,
                          const std::vector<NodeId>& sources,
                          std::uint64_t lanes,
                          const std::vector<NodeId>& sinks,
                          std::uint64_t* out) = 0;

  /// \brief 64-row blocks answered per reachability pass. Engines replaying
  /// multi-word strips (graph/strip_reachability.h) return the strip width
  /// W; the plan then iterates strips of W consecutive blocks and calls the
  /// Strip* hooks below, so one BFS amortizes over 64·W rows. The default
  /// (1) keeps the per-block iteration byte-for-byte.
  virtual unsigned StripWords() const { return 1; }

  /// Strip variant of BlockConditions. `lanes` is an in/out span of
  /// StripWords() words covering blocks [strip·W, strip·W+W) in block
  /// order (words past the bank's last block are zero); on return each
  /// word holds its block's surviving lanes. The default forwards the
  /// single block of a width-1 strip.
  virtual void StripConditions(std::size_t worker, std::size_t strip,
                               const FlowConditions& conditions,
                               std::uint64_t* lanes) {
    lanes[0] = BlockConditions(worker, strip, conditions, lanes[0]);
  }

  /// Strip variant of BlockReach: writes out[s·W + w] = the lanes of block
  /// strip·W+w in which sinks[s] is reached.
  virtual void StripReach(std::size_t worker, std::size_t strip,
                          const std::vector<NodeId>& sources,
                          const std::uint64_t* lanes,
                          const std::vector<NodeId>& sinks,
                          std::uint64_t* out) {
    BlockReach(worker, strip, sources, lanes[0], sinks, out);
  }
};

/// \brief The skeleton knobs, mirrored from QueryEngineOptions so both
/// engines enforce identical floors and deadline-check cadence.
struct QueryPlanOptions {
  std::size_t min_conditional_rows = 32;
  std::size_t rows_per_task = 256;
};

/// \brief Validates a request against `graph` exactly as QueryEngine does:
/// out-of-range endpoints and malformed shapes come back as descriptive
/// Statuses before any BFS workspace can see them.
Status ValidateQueryRequest(const DirectedGraph& graph,
                            const QueryRequest& request);

/// \brief Answers `requests` over `bank` using `ops` for per-block work.
/// See query_engine.h for the request/result contract; this function *is*
/// QueryEngine::AnswerBatch with the reachability calls abstracted out.
std::vector<QueryResult> RunQueryPlan(const DirectedGraph& graph,
                                      const BankGeneration& bank,
                                      const std::vector<QueryRequest>& requests,
                                      const QueryPlanOptions& options,
                                      ThreadPool& pool, BlockOps& ops);

}  // namespace infoflow::serve
