/// \file query_engine.h
/// \brief Batched flow-query answering over a SampleBank generation.
///
/// Every query kind is the same estimator replayed over bank rows: for each
/// retained pseudo-state x, evaluate an indicator by BFS over x's packed
/// edge bits, then average (Eq. 5). Conditioning (Eq. 7/8) filters the rows
/// by I(x, C) first — the surviving count is reported as `effective_rows`
/// so callers can see how much evidence the conditional estimate rests on,
/// and queries whose surviving count falls below a floor fail with a
/// descriptive Status instead of returning a noisy ratio.
///
/// Batch amortization: queries in one batch that share a source frontier
/// (same source set, same conditioning set) are merged into one row scan —
/// a single multi-source BFS per row answers all their sinks at once. Each
/// distinct conditioning set's row mask is likewise computed once per
/// batch. Row scans run in parallel over the engine's thread pool, rows
/// partitioned contiguously per worker.
///
/// Bit-parallel row scans: by default the engine consumes the bank's
/// edge-major plane through BatchReachabilityWorkspace, answering 64 rows
/// per BFS pass — row masks, conditioning indicators I(x, C) and per-sink
/// indicators are all computed blockwise as 64-bit lane masks, with
/// conditional constraints narrowing the live lanes so dead rows cost
/// nothing. The scalar one-BFS-per-row path (ReachabilityWorkspace over
/// packed rows) is kept as the reference implementation behind
/// `QueryEngineOptions::use_batch_reachability = false` (the serve
/// daemon's `--scalar-reachability` escape hatch); both paths produce
/// bit-identical results, which the differential tests assert.
///
/// Every estimate carries ChainDiagnostics (split-R̂ / ESS / MCSE, see
/// stats/convergence.h) computed from the per-chain draw sequences the
/// bank's chain-major row layout preserves.
///
/// Thread-safety: an engine instance must be driven by one thread at a time
/// (it reuses per-worker scratch); the serve daemon gives each connection
/// its own engine over the shared bank.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analytic/cascade_estimator.h"
#include "core/flow_query.h"
#include "graph/batch_reachability.h"
#include "graph/graph.h"
#include "graph/reachability.h"
#include "graph/strip_reachability.h"
#include "obs/metrics.h"
#include "serve/sample_bank.h"
#include "stats/convergence.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace infoflow::serve {

/// \brief What a query asks for.
enum class QueryKind {
  /// Pr[∃ s ∈ sources: s ⤳ sink | M, C] for a single sink (Eq. 5/8).
  kFlow,
  /// The same, for every sink of a community in one pass.
  kCommunity,
  /// Pr[all listed flows hold jointly | M, C].
  kJoint,
};

/// The canonical lower-case name ("flow" / "community" / "joint").
const char* QueryKindName(QueryKind kind);

/// \brief Which estimator answers a query.
///
/// `kBank` is the classic Eq. 5 replay over retained MH rows; `kAnalytic`
/// is the sampling-free message-passing estimator (analytic/
/// cascade_estimator.h); `kAuto` lets the BackendDispatcher route per
/// query — analytic only when the query is unconditional, non-joint, and
/// its reachable subgraph admits an *exact* analytic regime (tree-like or
/// enumerable), bank replay otherwise. Conditioning (Eq. 7–8) and joint
/// queries always go to the bank: their estimators are row filters by
/// construction.
enum class QueryBackend {
  kAuto,
  kAnalytic,
  kBank,
};

/// The canonical lower-case name ("auto" / "analytic" / "bank").
const char* QueryBackendName(QueryBackend backend);

/// Parses a backend name; fails descriptively on anything else.
Result<QueryBackend> ParseQueryBackend(std::string_view name);

/// \brief One flow query.
struct QueryRequest {
  /// Caller-assigned id echoed in the response (protocol correlation).
  std::string id;
  /// Daemon-minted per-query trace id (serve/MintQueryId); 0 = unstamped.
  /// Every TraceSpan in the query's lifetime carries it, including spans
  /// recorded in `--shard-procs` replica processes.
  std::uint64_t query_id = 0;
  /// True when the wire request carried `query_id` explicitly (client or
  /// upstream router); only then is it echoed in the response — minted ids
  /// are internal, so identical runs stay byte-identical regardless of
  /// where the process-global mint counter happens to sit.
  bool query_id_provided = false;
  QueryKind kind = QueryKind::kFlow;
  /// Source set (kFlow/kCommunity). Multi-source models the omnipotent
  /// external world standing alongside a user (§V-D).
  std::vector<NodeId> sources;
  /// Sinks: exactly one for kFlow, one or more for kCommunity.
  std::vector<NodeId> sinks;
  /// The flows of a kJoint query.
  FlowConditions flows;
  /// Conditioning set C; empty → unconditional.
  FlowConditions given;
  /// Per-query deadline in milliseconds from batch entry; 0 → none.
  double timeout_ms = 0.0;
  /// Requested backend; absent → the engine's default_backend. Explicit
  /// kAnalytic fails descriptively when the query is ineligible (joint,
  /// conditional) or the subgraph is not tree-like enough; kAuto never
  /// fails for backend reasons — it falls back to the bank.
  std::optional<QueryBackend> backend;
};

/// \brief One sink's estimate with its convergence evidence.
struct SinkEstimate {
  NodeId sink = 0;
  /// Mean indicator over the surviving rows (all rows when unconditional).
  double value = 0.0;
  /// Cross-chain diagnostics of the indicator draws (MCSE/ESS/R̂).
  ChainDiagnostics diagnostics;
};

/// \brief Outcome of one query.
struct QueryResult {
  /// OK, or why the query failed (validation, conditional floor, deadline).
  Status status;
  /// One entry per sink (kFlow/kCommunity); one synthetic entry with
  /// sink = flows.front().sink for kJoint.
  std::vector<SinkEstimate> estimates;
  /// Rows surviving the I(x, C) filter — the effective retained count of
  /// Eq. 8's denominator.
  std::size_t effective_rows = 0;
  /// Rows in the generation the query was answered against.
  std::size_t total_rows = 0;
  /// Generation id the query was answered against.
  std::uint64_t generation = 0;
  /// Model epoch the generation's rows were drawn from (streaming daemons
  /// bump this on drift-triggered rebuilds; 1 for a static model).
  std::uint64_t model_epoch = 0;
  /// True when this query's row scan was merged with another query's
  /// (shared source frontier + conditioning set).
  bool frontier_shared = false;
  /// Wall-clock of the batch this query was answered in, milliseconds
  /// (batch attribution: every member of a batch reports the batch's
  /// latency). Feeds the slow-query log and latency histograms.
  double latency_ms = 0.0;
  /// Cut-frontier exchange rounds of the batch (sharded engines; 0 on the
  /// single engine). Batch attribution, like latency_ms.
  std::uint64_t exchange_rounds = 0;
  /// Cut-frontier words delivered to ghosts during the batch (sharded
  /// engines; 0 on the single engine). Batch attribution.
  std::uint64_t cut_frontier_words = 0;
  /// Per-shard replay wall-clock of the batch, milliseconds (CPU-time
  /// summed across workers; empty on the single engine). Batch
  /// attribution; feeds the slow-query log's shard timings.
  std::vector<double> shard_replay_ms;
  /// Which estimator actually answered (never kAuto): kAnalytic when the
  /// dispatcher took the sampling-free path, kBank for row replay. Stamped
  /// into the serve NDJSON response, trace spans, and the slow-query log.
  QueryBackend backend = QueryBackend::kBank;
  /// The analytic regime used when backend == kAnalytic (tree-exact /
  /// enumeration / loopy); meaningless otherwise.
  analytic::AnalyticMethod analytic_method = analytic::AnalyticMethod::kTreeExact;
};

/// \brief Engine tuning.
struct QueryEngineOptions {
  /// Conditional queries whose surviving-row count falls below this floor
  /// fail with FailedPrecondition (the estimate would be noise).
  std::size_t min_conditional_rows = 32;
  /// Worker threads for row scans; 0 → hardware concurrency.
  std::size_t num_threads = 0;
  /// Rows scanned between deadline checks inside a worker.
  std::size_t rows_per_task = 256;
  /// Answer row scans 64 rows at a time over the bank's edge-major plane
  /// (graph/batch_reachability.h). false falls back to the scalar
  /// one-BFS-per-row reference path — the `--scalar-reachability` escape
  /// hatch; results are bit-identical either way.
  bool use_batch_reachability = true;
  /// Replay lane width for the batch path (`--lanes {64,256,512,auto}`).
  /// k64 keeps the classic one-word BatchReachabilityWorkspace; k256/k512
  /// replay 4/8-word strips (graph/strip_reachability.h) so one BFS pass
  /// answers 256/512 rows; kAuto picks the widest strip the bank fills.
  /// Results are bit-identical at every width (differentially tested).
  /// Ignored on the scalar reference path.
  LaneWidth lanes = LaneWidth::kAuto;
  /// Backend for requests that don't carry one. kBank preserves the
  /// classic replay-everything behavior; the serve daemon's `--backend`
  /// flag and the CLI's `--backend` override it.
  QueryBackend default_backend = QueryBackend::kBank;
  /// Tuning for the analytic estimator (feasibility thresholds, loopy
  /// sweep budget). `require_exact` is ignored: the dispatcher forces it
  /// per query (true under kAuto, false under explicit kAnalytic).
  analytic::AnalyticOptions analytic;

  /// Validates the option values.
  Status Validate() const;
};

/// \brief Routes queries between the analytic estimator and bank replay.
///
/// Shared by QueryEngine and ShardedQueryEngine so single- and sharded-
/// process deployments answer identically (bit-for-bit, which
/// tests/test_shard.cc asserts): the dispatcher partitions a batch into
/// analytically-answered results and bank-bound requests, the caller runs
/// its own replay machinery over the latter, and `Merge` re-interleaves.
class BackendDispatcher {
 public:
  explicit BackendDispatcher(const DirectedGraph& graph,
                             const QueryEngineOptions& options)
      : graph_(&graph), options_(&options) {}

  /// \brief Answers every analytically-routed request in `requests`;
  /// returns the indices of the requests the caller must replay against
  /// bank rows (in original order). `results` must be pre-sized to
  /// requests.size(); entries for analytic answers (success or
  /// explicit-backend failure) are filled, bank-bound entries untouched.
  std::vector<std::size_t> Partition(const BankGeneration& bank,
                                     const std::vector<QueryRequest>& requests,
                                     std::vector<QueryResult>& results) const;

  /// Scatters the caller's bank replay results (aligned with the index
  /// vector Partition returned) back into the full result vector and
  /// stamps every result's backend counter.
  static void Merge(const std::vector<std::size_t>& bank_indices,
                    std::vector<QueryResult>&& bank_results,
                    std::vector<QueryResult>& results);

 private:
  /// Answers one analytic-eligible query; sets `result` and returns true,
  /// or returns false when the query must go to the bank (kAuto fallback).
  bool TryAnalytic(const BankGeneration& bank, const QueryRequest& request,
                   QueryBackend backend, QueryResult& result) const;

  const DirectedGraph* graph_;
  const QueryEngineOptions* options_;
};

/// \brief Answers query batches against BankGeneration rows.
class QueryEngine {
 public:
  /// Builds an engine bound to `graph` (rows must come from the same
  /// topology — i.e. the SampleBank's graph_ptr()).
  static Result<QueryEngine> Create(std::shared_ptr<const DirectedGraph> graph,
                                    QueryEngineOptions options);

  /// \brief Answers every request against `bank`'s rows. Results are
  /// positionally aligned with `requests`. Invalid requests fail
  /// individually (their Status set) without affecting the rest.
  std::vector<QueryResult> AnswerBatch(
      const BankGeneration& bank, const std::vector<QueryRequest>& requests);

  /// Worker count actually in use.
  std::size_t num_threads() const { return pool_->size(); }

 private:
  QueryEngine(std::shared_ptr<const DirectedGraph> graph,
              QueryEngineOptions options);

  /// Validates one request against the graph.
  Status ValidateRequest(const QueryRequest& request) const;

  std::shared_ptr<const DirectedGraph> graph_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Scratch BFS workspace per worker task index (scalar reference path).
  std::vector<ReachabilityWorkspace> workspaces_;
  /// Scratch bit-parallel workspace per worker task index (batch path).
  std::vector<BatchReachabilityWorkspace> batch_workspaces_;
  /// Scratch multi-word strip workspace per worker (batch path at 256/512
  /// lanes). Lazily created at the batch's resolved width and recreated
  /// only when a later batch resolves a different width.
  std::vector<std::unique_ptr<StripWorkspace>> strip_workspaces_;
};

}  // namespace infoflow::serve
