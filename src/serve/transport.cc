#include "serve/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include <poll.h>
#include <unistd.h>

namespace infoflow::serve {

bool LineReader::NextLine(std::string& line) {
  while (true) {
    if (PopBufferedLine(line)) return true;
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    if (interrupt_ != nullptr) {
      // Poll in short slices so a raised flag reads as EOF instead of
      // leaving the loop parked in read(2) past the signal.
      while (!Readable()) {
        if (Interrupted()) {
          eof_ = true;
          break;
        }
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = poll(&pfd, 1, 100);
        if (ready > 0) break;
        if (ready < 0 && errno != EINTR) {
          eof_ = true;
          break;
        }
      }
      if (eof_) continue;
    }
    FillOnce();
  }
}

bool LineReader::TryNextLine(std::string& line) {
  if (PopBufferedLine(line)) return true;
  while (!eof_ && Readable()) {
    FillOnce();
    if (PopBufferedLine(line)) return true;
  }
  if (eof_ && !buffer_.empty()) {
    line = std::move(buffer_);
    buffer_.clear();
    return true;
  }
  return false;
}

bool LineReader::NextLineWithin(std::string& line, double deadline_ms,
                                bool& timed_out) {
  timed_out = false;
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(deadline_ms, 0.0)));
  while (true) {
    if (PopBufferedLine(line)) return true;
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      timed_out = true;
      return false;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      timed_out = true;
      return false;
    }
    FillOnce();
  }
}

bool LineReader::PopBufferedLine(std::string& line) {
  const std::size_t pos = buffer_.find('\n');
  if (pos == std::string::npos) return false;
  line.assign(buffer_, 0, pos);
  buffer_.erase(0, pos + 1);
  return true;
}

bool LineReader::Readable() const {
  pollfd pfd{fd_, POLLIN, 0};
  return poll(&pfd, 1, 0) > 0;
}

void LineReader::FillOnce() {
  char chunk[65536];
  ssize_t got;
  do {
    got = read(fd_, chunk, sizeof(chunk));
  } while (got < 0 && errno == EINTR);
  if (got <= 0) {
    eof_ = true;  // EOF or unrecoverable error: drain and stop.
    return;
  }
  buffer_.append(chunk, static_cast<std::size_t>(got));
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t put = write(fd, data.data() + off, data.size() - off);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace infoflow::serve
