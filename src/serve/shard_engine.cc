#include "serve/shard_engine.h"

#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/timer.h"

namespace infoflow::serve {

std::shared_ptr<const StripPlane> ShardView::AcquireStripPlane(
    unsigned width, const BankGeneration& bank) const {
  IF_CHECK(width == 4 || width == 8) << "unsupported strip width " << width;
  IF_CHECK_EQ(bank.id(), generation_)
      << "strip plane requested against a different generation";
  const std::size_t slot = width == 4 ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(strip_mutex_);
    if (strip_planes_[slot]) return strip_planes_[slot];
  }
  WallTimer timer;
  auto plane = std::make_shared<const StripPlane>(BuildStripPlane(
      width, num_edges_, bank.num_blocks(),
      [this](std::size_t b) { return BlockWords(b); },
      [&bank](std::size_t b) { return bank.BlockLaneMask(b); }));
  obs::GetHistogram("shard.strip_interleave_ms",
                    {0.1, 0.5, 2.5, 10.0, 50.0, 250.0, 1000.0})
      .Record(timer.Millis());
  std::lock_guard<std::mutex> lock(strip_mutex_);
  if (!strip_planes_[slot]) strip_planes_[slot] = std::move(plane);
  return strip_planes_[slot];
}

std::shared_ptr<const ShardView> ShardEngine::AcquireView(
    const BankGeneration& bank) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (current_ != nullptr && current_->generation() == bank.id()) {
      return current_;
    }
  }
  // Gather outside the lock: concurrent first-acquirers may race to build
  // the same view, but publication is a pointer swap and losers' copies are
  // simply dropped — readers never wait on a gather.
  WallTimer timer;
  const std::size_t num_blocks = bank.num_blocks();
  const std::size_t m = shard_->graph.num_edges();
  auto view = std::shared_ptr<ShardView>(new ShardView(bank.id(), m));
  view->plane_.resize(num_blocks * m);
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::uint64_t* parent = bank.BlockEdgeWords(b);
    std::uint64_t* out = view->plane_.data() + b * m;
    for (std::size_t le = 0; le < m; ++le) {
      out[le] = parent[shard_->edge_to_parent[le]];
    }
  }
  obs::GetCounter("shard.views_built_total").Increment();
  obs::GetHistogram("shard.view_gather_ms",
                    {0.01, 0.1, 0.5, 2.5, 10.0, 50.0, 250.0})
      .Record(timer.Millis());
  std::lock_guard<std::mutex> lock(mutex_);
  // Publish unless someone already published this (or a newer) generation.
  if (current_ == nullptr || current_->generation() < bank.id()) {
    current_ = view;
  }
  return current_->generation() == bank.id() ? current_ : view;
}

ShardSet::ShardSet(std::shared_ptr<const GraphPartition> partition)
    : partition_(std::move(partition)) {
  IF_CHECK(partition_ != nullptr) << "null partition";
  engines_.reserve(partition_->num_shards);
  for (const ShardGraph& shard : partition_->shards) {
    engines_.push_back(std::make_unique<ShardEngine>(shard));
  }
}

std::vector<std::shared_ptr<const ShardView>> ShardSet::AcquireAll(
    const BankGeneration& bank) {
  std::vector<std::shared_ptr<const ShardView>> views;
  views.reserve(engines_.size());
  for (const auto& engine : engines_) {
    views.push_back(engine->AcquireView(bank));
  }
  return views;
}

}  // namespace infoflow::serve
