/// \file transport.h
/// \brief Byte-level NDJSON transport primitives shared by the serve tier.
///
/// The serve stack is split into three layers: **transport** (this file —
/// buffered line framing over POSIX fds, nothing protocol- or
/// query-aware), **router** (serve/router.h — splitting batches across
/// shard engines or shard processes and merging answers), and
/// **shard-engine** (serve/shard_engine.h + serve/query_engine.h — the
/// per-shard replay of Eq. 5 over bank rows). Server (serve/server.h) wires
/// the three together; the multi-process router reuses the same reader to
/// speak the unchanged NDJSON wire protocol to shard children.

#pragma once

#include <csignal>
#include <string>

namespace infoflow::serve {

/// \brief Buffered line reader over a POSIX fd.
class LineReader {
 public:
  /// When `interrupt` is non-null, blocking reads poll in short slices and
  /// treat `*interrupt != 0` as EOF — the serve daemon points this at its
  /// SIGTERM/SIGINT flag so a signal unwinds the loop instead of leaving it
  /// parked in read(2).
  explicit LineReader(int fd,
                      const volatile std::sig_atomic_t* interrupt = nullptr)
      : fd_(fd), interrupt_(interrupt) {}

  /// Blocking: pops the next line (without '\n'); false at EOF. A final
  /// unterminated line is still delivered.
  bool NextLine(std::string& line);

  /// Non-blocking: pops a line only if one is already buffered or the fd
  /// has readable data that completes one; false otherwise (never blocks
  /// past a single read of already-available bytes).
  bool TryNextLine(std::string& line);

  /// \brief Bounded-blocking: like NextLine but gives up once
  /// `deadline_ms` milliseconds (from the call) elapse without a complete
  /// line. Returns true with a line, or false with `timed_out` telling EOF
  /// (false) apart from deadline expiry (true) — the router's per-batch
  /// child deadline.
  bool NextLineWithin(std::string& line, double deadline_ms, bool& timed_out);

 private:
  bool PopBufferedLine(std::string& line);
  bool Readable() const;
  /// One read(2) into the buffer; flips eof_ at end-of-stream or error.
  void FillOnce();

  /// True when the interrupt flag (if any) has been raised.
  bool Interrupted() const { return interrupt_ != nullptr && *interrupt_ != 0; }

  int fd_;
  const volatile std::sig_atomic_t* interrupt_ = nullptr;
  std::string buffer_;
  bool eof_ = false;
};

/// Writes all of `data`, retrying partial writes; false on error.
bool WriteAll(int fd, const std::string& data);

}  // namespace infoflow::serve
