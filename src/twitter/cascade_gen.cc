#include "twitter/cascade_gen.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace infoflow {

Status CascadeGenOptions::Validate() const {
  if (num_messages == 0) {
    return Status::InvalidArgument("num_messages must be positive");
  }
  for (double p : {drop_original_prob, drop_retweet_prob, hashtag_prob,
                   url_prob}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probability option ", p,
                                     " outside [0,1]");
    }
  }
  if (mean_retweet_delay <= 0.0 || mean_message_gap <= 0.0) {
    return Status::InvalidArgument("mean delays must be positive");
  }
  return Status::OK();
}

namespace {

/// A scheduled potential activation: `parent` fired its edge toward
/// `child`; the copy arrives at `time`.
struct Arrival {
  double time;
  NodeId child;
  NodeId parent;
  std::uint64_t parent_tweet;
  /// Min-heap on time.
  bool operator>(const Arrival& other) const { return time > other.time; }
};

std::string MakeBaseText(std::uint64_t message, const CascadeGenOptions& opt,
                         Rng& rng) {
  static const char* kVocab[] = {"breaking", "just",  "saw",    "the",
                                 "amazing",  "news",  "about",  "today",
                                 "cannot",   "believe", "this",  "wow"};
  std::string text;
  const std::size_t words = 2 + rng.NextBounded(4);
  for (std::size_t w = 0; w < words; ++w) {
    text += kVocab[rng.NextBounded(std::size(kVocab))];
    text += ' ';
  }
  // A unique story token keeps message contents distinct, as real tweet
  // bodies effectively are.
  text += "story" + std::to_string(message);
  if (rng.Bernoulli(opt.hashtag_prob)) {
    text += " #tag" + std::to_string(rng.NextBounded(40));
  }
  if (rng.Bernoulli(opt.url_prob)) {
    text += " http://t.co/u" + std::to_string(message);
  }
  return text;
}

}  // namespace

Result<GeneratedCascades> GenerateCascades(const PointIcm& model,
                                           const UserRegistry& registry,
                                           const CascadeGenOptions& options,
                                           Rng& rng) {
  IF_RETURN_NOT_OK(options.Validate());
  const DirectedGraph& graph = model.graph();
  if (registry.size() < graph.num_nodes()) {
    return Status::InvalidArgument("registry covers ", registry.size(),
                                   " users but the graph has ",
                                   graph.num_nodes());
  }

  // Author weights: heavier for well-followed users.
  std::vector<double> author_weight(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    author_weight[v] =
        static_cast<double>(graph.OutDegree(v)) + options.author_smoothing;
  }

  GeneratedCascades out;
  std::uint64_t next_tweet_id = 1;
  double clock = 0.0;
  std::vector<std::uint8_t> active(graph.num_nodes(), 0);
  std::vector<std::string> text_of(graph.num_nodes());

  for (std::uint64_t msg = 0; msg < options.num_messages; ++msg) {
    clock += rng.Exponential(1.0 / options.mean_message_gap);
    const auto author = static_cast<NodeId>(rng.Categorical(author_weight));

    AttributedObject truth;
    truth.sources = {author};
    std::fill(active.begin(), active.end(), 0);

    // Event-driven percolation with "race" semantics: the first arriving
    // fired copy activates a node and is its attributed parent — exactly
    // how a single manual retweet attributes one ancestor.
    std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> queue;

    auto emit = [&](NodeId user, double time, std::string text,
                    std::uint64_t parent_tweet, bool dropped) {
      const std::uint64_t id = next_tweet_id++;
      if (!dropped) {
        Tweet tweet;
        tweet.id = id;
        tweet.user = user;
        tweet.time = time;
        tweet.text = std::move(text);
        tweet.truth_message = msg;
        tweet.truth_parent_tweet = parent_tweet;
        out.log.push_back(std::move(tweet));
      }
      return id;
    };

    auto fan_out = [&](NodeId user, double time, std::uint64_t tweet_id) {
      for (EdgeId e : graph.OutEdges(user)) {
        const NodeId follower = graph.edge(e).dst;
        if (active[follower]) continue;
        if (!rng.Bernoulli(model.prob(e))) continue;
        queue.push(Arrival{
            time + rng.Exponential(1.0 / options.mean_retweet_delay),
            follower, user, tweet_id});
      }
    };

    // The original.
    active[author] = 1;
    truth.active_nodes.push_back(author);
    text_of[author] = MakeBaseText(msg, options, rng);
    const bool drop_original = rng.Bernoulli(options.drop_original_prob);
    if (drop_original) ++out.dropped_originals;
    const std::uint64_t original_id =
        emit(author, clock, text_of[author], kNoTweet, drop_original);
    fan_out(author, clock, original_id);

    while (!queue.empty()) {
      const Arrival arrival = queue.top();
      queue.pop();
      if (active[arrival.child]) continue;  // lost the race
      active[arrival.child] = 1;
      truth.active_nodes.push_back(arrival.child);
      const EdgeId e = graph.FindEdge(arrival.parent, arrival.child);
      IF_CHECK(e != kInvalidEdge);
      truth.active_edges.push_back(e);
      text_of[arrival.child] =
          "RT @" + registry.NameOf(arrival.parent) + ": " +
          text_of[arrival.parent];
      const bool drop = rng.Bernoulli(options.drop_retweet_prob);
      if (drop) ++out.dropped_retweets;
      const std::uint64_t id = emit(arrival.child, arrival.time,
                                    text_of[arrival.child],
                                    arrival.parent_tweet, drop);
      fan_out(arrival.child, arrival.time, id);
      clock = std::max(clock, arrival.time);
    }
    out.ground_truth.objects.push_back(std::move(truth));
  }
  std::sort(out.log.begin(), out.log.end(),
            [](const Tweet& a, const Tweet& b) { return a.time < b.time; });
  return out;
}

}  // namespace infoflow
