/// \file interesting_users.h
/// \brief Selecting "interesting" focus users (§IV-C): users who tweet
/// frequently and whose tweets are retweeted often — the foci of the
/// Fig. 2/8/9 ego-network experiments.

#pragma once

#include <vector>

#include "graph/graph.h"
#include "learn/attributed.h"

namespace infoflow {

/// \brief Per-user activity tallies.
struct UserActivity {
  NodeId user = kInvalidNode;
  /// Messages this user originated.
  std::uint64_t tweets = 0;
  /// Activations of *other* users in cascades this user originated.
  std::uint64_t retweets_received = 0;

  /// Interest score: tweets weighted by the retweets they drew.
  double Score() const;
};

/// Tallies activity from attributed evidence.
std::vector<UserActivity> TallyUserActivity(NodeId num_users,
                                            const AttributedEvidence& evidence);

/// \brief The top-k users by Score(), ties broken by id (deterministic).
/// Returns fewer when not enough users have any activity.
std::vector<NodeId> SelectInterestingUsers(NodeId num_users,
                                           const AttributedEvidence& evidence,
                                           std::size_t k);

}  // namespace infoflow
