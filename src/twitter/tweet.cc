#include "twitter/tweet.h"

#include <charconv>

#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

UserRegistry UserRegistry::Sequential(NodeId count) {
  UserRegistry registry;
  registry.names_.reserve(count);
  for (NodeId i = 0; i < count; ++i) {
    registry.names_.push_back("user" + std::to_string(i));
  }
  return registry;
}

const std::string& UserRegistry::NameOf(NodeId id) const {
  IF_CHECK(id < names_.size()) << "user id " << id << " out of range";
  return names_[id];
}

NodeId UserRegistry::IdOf(const std::string& name) const {
  // Sequential registries can answer by parsing "user<N>" directly.
  if (StartsWith(name, "user")) {
    NodeId value = 0;
    const char* begin = name.data() + 4;
    const char* end = name.data() + name.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc() && ptr == end && value < names_.size()) {
      return value;
    }
  }
  return kInvalidNode;
}

}  // namespace infoflow
