#include "twitter/interesting_users.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace infoflow {

double UserActivity::Score() const {
  // Log-damped product: prolific users with widely-retweeted content score
  // highest; pure volume without reach (or one viral hit) scores lower.
  return std::log1p(static_cast<double>(tweets)) *
         std::log1p(static_cast<double>(retweets_received));
}

std::vector<UserActivity> TallyUserActivity(
    NodeId num_users, const AttributedEvidence& evidence) {
  std::vector<UserActivity> activity(num_users);
  for (NodeId v = 0; v < num_users; ++v) activity[v].user = v;
  for (const AttributedObject& obj : evidence.objects) {
    const std::uint64_t spread = obj.active_nodes.size() - obj.sources.size();
    for (NodeId s : obj.sources) {
      IF_CHECK(s < num_users) << "source " << s << " out of range";
      ++activity[s].tweets;
      activity[s].retweets_received += spread;
    }
  }
  return activity;
}

std::vector<NodeId> SelectInterestingUsers(NodeId num_users,
                                           const AttributedEvidence& evidence,
                                           std::size_t k) {
  std::vector<UserActivity> activity = TallyUserActivity(num_users, evidence);
  std::stable_sort(activity.begin(), activity.end(),
                   [](const UserActivity& a, const UserActivity& b) {
                     if (a.Score() != b.Score()) return a.Score() > b.Score();
                     return a.user < b.user;
                   });
  std::vector<NodeId> out;
  for (const UserActivity& a : activity) {
    if (out.size() >= k) break;
    if (a.Score() <= 0.0) break;
    out.push_back(a.user);
  }
  return out;
}

}  // namespace infoflow
