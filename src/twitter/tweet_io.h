/// \file tweet_io.h
/// \brief CSV persistence for raw tweet logs — the ingestion format a real
/// crawl would arrive in, and what `infoflow parse-tweets` consumes.
///
/// Columns: id,user,time,text (header required). `user` is the bare handle
/// ("user42"); text is standard CSV-quoted, so commas and quotes inside
/// tweets survive. The generator ground-truth fields are deliberately NOT
/// serialized: a log file carries exactly what a crawler would see.

#pragma once

#include <string>

#include "twitter/tweet.h"
#include "util/status.h"

namespace infoflow {

/// Serializes the public fields of a log to CSV text.
std::string SerializeTweetLog(const TweetLog& log,
                              const UserRegistry& registry);

/// Parses a CSV tweet log; handles are resolved against `registry`
/// (unknown handles are a ParseError — a crawl defines its own universe).
Result<TweetLog> DeserializeTweetLog(const std::string& text,
                                     const UserRegistry& registry);

/// File wrappers.
Status SaveTweetLog(const TweetLog& log, const UserRegistry& registry,
                    const std::string& path);
Result<TweetLog> LoadTweetLog(const std::string& path,
                              const UserRegistry& registry);

}  // namespace infoflow
