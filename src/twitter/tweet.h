/// \file tweet.h
/// \brief Raw tweet records — the input format of the §IV-B preprocessing.
///
/// The paper works from the Choudhury et al. Twitter crawl (10M tweets,
/// 118K users; sparse, many retweets missing their original). We do not
/// have that proprietary crawl, so src/twitter/ provides a *simulator* that
/// emits logs in the same shape (see cascade_gen.h) and a parser that
/// performs the paper's preprocessing on them (see retweet_parser.h).
///
/// A record carries only what a crawl would: id, author, timestamp, text.
/// Retweets use the classic syntax the paper parses:
///
///   "RT @alice: RT @bob: look at this http://t.co/xyz #icde"
///
/// The `truth_*` fields hold the generator's ground truth; they are
/// populated only by the simulator and exist so tests can score the
/// parser's reconstruction. The parser itself never reads them.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace infoflow {

/// Sentinel for "no tweet" (e.g. no parent).
inline constexpr std::uint64_t kNoTweet = ~std::uint64_t{0};
/// Sentinel for "no message id".
inline constexpr std::uint64_t kNoMessage = ~std::uint64_t{0};

/// \brief One raw tweet.
struct Tweet {
  /// Crawl-unique tweet id.
  std::uint64_t id = kNoTweet;
  /// Author's node id in the user registry.
  NodeId user = kInvalidNode;
  /// Posting time (seconds; any monotone clock).
  double time = 0.0;
  /// Raw text, including any "RT @name:" prefixes, #hashtags and urls.
  std::string text;

  /// \name Generator ground truth (tests only — never read by the parser)
  ///@{
  std::uint64_t truth_message = kNoMessage;
  std::uint64_t truth_parent_tweet = kNoTweet;
  ///@}
};

/// A time-ordered tweet log.
using TweetLog = std::vector<Tweet>;

/// \brief The user registry: maps between node ids and the "@name" handles
/// appearing in tweet text.
class UserRegistry {
 public:
  /// Creates `count` users named "user0" ... "user<count-1>".
  static UserRegistry Sequential(NodeId count);

  /// Number of users.
  NodeId size() const { return static_cast<NodeId>(names_.size()); }

  /// Handle of user `id` (without the '@').
  const std::string& NameOf(NodeId id) const;

  /// Node id for `name`, or kInvalidNode when unknown.
  NodeId IdOf(const std::string& name) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace infoflow
