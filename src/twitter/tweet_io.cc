#include "twitter/tweet_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace infoflow {

std::string SerializeTweetLog(const TweetLog& log,
                              const UserRegistry& registry) {
  CsvWriter writer({"id", "user", "time", "text"});
  char buf[64];
  for (const Tweet& tweet : log) {
    std::snprintf(buf, sizeof(buf), "%.17g", tweet.time);
    writer.AppendRow({std::to_string(tweet.id), registry.NameOf(tweet.user),
                      buf, tweet.text});
  }
  return writer.ToString();
}

Result<TweetLog> DeserializeTweetLog(const std::string& text,
                                     const UserRegistry& registry) {
  auto table = ParseCsv(text);
  if (!table.ok()) return table.status();
  auto id_col = table->ColumnIndex("id");
  auto user_col = table->ColumnIndex("user");
  auto time_col = table->ColumnIndex("time");
  auto text_col = table->ColumnIndex("text");
  for (const auto* col : {&id_col, &user_col, &time_col, &text_col}) {
    if (!col->ok()) return col->status();
  }
  TweetLog log;
  log.reserve(table->rows.size());
  for (std::size_t i = 0; i < table->rows.size(); ++i) {
    const auto& row = table->rows[i];
    Tweet tweet;
    {
      const std::string& field = row[*id_col];
      const auto [ptr, ec] = std::from_chars(
          field.data(), field.data() + field.size(), tweet.id);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return Status::ParseError("row ", i + 1, ": bad tweet id '", field,
                                  "'");
      }
    }
    tweet.user = registry.IdOf(row[*user_col]);
    if (tweet.user == kInvalidNode) {
      return Status::ParseError("row ", i + 1, ": unknown handle '",
                                row[*user_col], "'");
    }
    try {
      std::size_t consumed = 0;
      tweet.time = std::stod(row[*time_col], &consumed);
      if (consumed != row[*time_col].size()) {
        return Status::ParseError("row ", i + 1, ": bad time '",
                                  row[*time_col], "'");
      }
    } catch (const std::exception&) {
      return Status::ParseError("row ", i + 1, ": bad time '",
                                row[*time_col], "'");
    }
    tweet.text = row[*text_col];
    log.push_back(std::move(tweet));
  }
  return log;
}

Status SaveTweetLog(const TweetLog& log, const UserRegistry& registry,
                    const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '", path, "' for writing");
  out << SerializeTweetLog(log, registry);
  if (!out) return Status::IOError("write failed for '", path, "'");
  return Status::OK();
}

Result<TweetLog> LoadTweetLog(const std::string& path,
                              const UserRegistry& registry) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '", path, "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeTweetLog(buffer.str(), registry);
}

}  // namespace infoflow
