/// \file tag_gen.h
/// \brief Hashtag / URL propagation generator — unattributed evidence with
/// an omnipotent external-world node (§V-D).
///
/// Hashtags and URLs spread through Twitter *and* enter it from outside
/// (news, radio, offline events). The paper models the outside world as an
/// *omnipotent user* every account follows. We augment the follow graph
/// with that node and simulate two processes:
///
///  - **URLs** (TagKind::kUrl): faithful ICM percolation. A shortened URL
///    is effectively random, so users almost never discover it
///    independently; entries come from a small constant external rate plus
///    in-network propagation. The ICM learners should model this well
///    (Fig. 8).
///
///  - **Hashtags** (TagKind::kHashtag): a *mixture* the ICM cannot express.
///    A fraction of tags accompany coordinated offline events (e.g.
///    "#ICDE", "#POTUS"): during those, users adopt the tag independently
///    at a high external rate; quiet tags behave like URLs. Averaging the
///    two regimes into one edge probability mis-calibrates flow predictions
///    — reproducing the paper's Fig. 9 finding.
///
/// Traces are unattributed: (node, time) activations only, with the
/// omnipotent node active from time 0.

#pragma once

#include <memory>

#include "core/icm.h"
#include "learn/unattributed.h"
#include "stats/rng.h"
#include "util/status.h"

namespace infoflow {

/// \brief The augmented network: base follow graph plus the omnipotent
/// node with an edge to every user.
struct TagNetwork {
  /// n+1-node graph; node `omnipotent` (== n) reaches every user.
  std::shared_ptr<const DirectedGraph> graph;
  NodeId omnipotent = kInvalidNode;
  /// In-network (non-omnipotent) edge activation probabilities, indexed by
  /// the augmented graph's edge ids; omnipotent edges hold 0 here (their
  /// rate is a per-run generation parameter).
  std::vector<double> in_network_probs;

  /// \brief Ground-truth point ICM at a given external entry probability on
  /// every omnipotent edge (for RMSE scoring of trained models).
  PointIcm GroundTruth(double external_prob) const;
};

/// \brief Augments a base model with the omnipotent node. Because the
/// omnipotent node gets the largest node id, base edge ids are preserved
/// verbatim in the augmented graph (a property the tests pin down).
TagNetwork AugmentWithOmnipotent(const PointIcm& base_model);

/// \brief Which propagation process to simulate.
enum class TagKind { kUrl, kHashtag };

/// \brief Generation parameters.
struct TagGenOptions {
  /// Number of distinct tags/URLs (information objects).
  std::size_t num_objects = 400;
  /// Mean in-network propagation delay (seconds).
  double mean_delay = 60.0;
  /// External discoveries land uniformly in [0, horizon).
  double horizon = 3600.0;
  /// kUrl: constant external entry probability per user per object.
  double url_external_prob = 0.003;
  /// kHashtag: event mixture parameters.
  double hashtag_event_prob = 0.3;
  double hashtag_event_external = 0.25;
  double hashtag_quiet_external = 0.004;

  Status Validate() const;
};

/// \brief Simulates `options.num_objects` objects of the given kind over
/// the augmented network and returns their unattributed traces (omnipotent
/// node active at time 0 in every trace).
Result<UnattributedEvidence> GenerateTagTraces(const TagNetwork& network,
                                               TagKind kind,
                                               const TagGenOptions& options,
                                               Rng& rng);

}  // namespace infoflow
