/// \file retweet_parser.h
/// \brief The §IV-B preprocessing: raw tweet logs → attributed evidence.
///
/// The parser reads only the public tweet fields (id, user, time, text).
/// It
///  1. strips "RT @name:" prefixes to recover each tweet's base content and
///     its ancestry chain,
///  2. groups tweets into messages by base content,
///  3. attributes each retweet to the user named in its outermost RT prefix
///     (the account it was directly forwarded from),
///  4. *recovers missing originals*: when retweets reference a root author
///     whose original tweet is absent from the log, a synthetic original is
///     inserted at a time just before the earliest retweet (the paper's
///     recovery step, which grew the crawl from 10M to 10.8M tweets), and
///     likewise recovers dropped intermediate ancestors named in chains,
///  5. emits attributed evidence and, optionally, the graph inferred from
///     the '@' attribution references (§IV-C: "the network topology is also
///     inferred from the data using the '@' references").

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "learn/attributed.h"
#include "twitter/tweet.h"
#include "util/status.h"

namespace infoflow {

/// \brief One reconstructed message cascade.
struct ParsedMessage {
  /// Base content shared by every tweet of the message.
  std::string base_text;
  /// Root author (original tweeter) — possibly recovered.
  NodeId root = kInvalidNode;
  /// (parent, child) attribution pairs, in time order.
  std::vector<std::pair<NodeId, NodeId>> attributions;
  /// Users active for this message (root first).
  std::vector<NodeId> active_users;
  /// True when the original record was absent and synthesized.
  bool recovered_original = false;
};

/// \brief Full parse outcome.
struct ParseResult {
  std::vector<ParsedMessage> messages;
  /// Originals synthesized in recovery.
  std::uint64_t recovered_originals = 0;
  /// Intermediate ancestors synthesized from RT chains.
  std::uint64_t recovered_intermediates = 0;
  /// Tweets whose RT prefix referenced an unknown handle (skipped).
  std::uint64_t unresolved_mentions = 0;

  /// \brief Converts to attributed evidence against `graph`: each
  /// attribution (p, c) becomes active edge (p, c) when the graph has it;
  /// attributions without a graph edge drop the child from the cascade
  /// (cannot be explained by the model).
  AttributedEvidence ToEvidence(const DirectedGraph& graph) const;

  /// \brief Infers a graph from the attribution references: one node per
  /// registry user, one edge per distinct (parent, child) pair.
  std::shared_ptr<const DirectedGraph> InferGraph(NodeId num_users) const;
};

/// \brief Parses a time-sorted log. `registry` resolves "@name" handles.
ParseResult ParseRetweetLog(const TweetLog& log, const UserRegistry& registry);

/// \brief Splits one tweet text into its RT chain and base content:
/// "RT @a: RT @b: hi" → mentions {a, b}, base "hi". Returns the handles in
/// outermost-first order.
void SplitRetweetChain(const std::string& text,
                       std::vector<std::string>* mentions_out,
                       std::string* base_out);

}  // namespace infoflow
