#include "twitter/retweet_parser.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace infoflow {

void SplitRetweetChain(const std::string& text,
                       std::vector<std::string>* mentions_out,
                       std::string* base_out) {
  IF_CHECK(mentions_out != nullptr && base_out != nullptr);
  mentions_out->clear();
  std::string_view rest = Trim(text);
  while (StartsWith(rest, "RT @")) {
    std::string_view after = rest.substr(4);
    std::size_t end = 0;
    while (end < after.size() && IsTagChar(after[end])) ++end;
    if (end == 0 || end >= after.size() || after[end] != ':') {
      // Malformed prefix; keep everything (including "RT @") as base
      // content.
      break;
    }
    mentions_out->emplace_back(after.substr(0, end));
    rest = Trim(after.substr(end + 1));  // past the ':'
  }
  *base_out = std::string(rest);
}

namespace {

/// Accumulates one message's reconstruction.
struct MessageBuild {
  NodeId root = kInvalidNode;
  bool root_from_record = false;
  std::vector<NodeId> order;  // activation order
  std::unordered_map<NodeId, NodeId> parent_of;
  std::unordered_set<NodeId> active;
  std::unordered_set<NodeId> has_record;

  void Activate(NodeId v) {
    if (active.insert(v).second) order.push_back(v);
  }
};

}  // namespace

ParseResult ParseRetweetLog(const TweetLog& log,
                            const UserRegistry& registry) {
  ParseResult result;
  // Keyed by base content; std::map keeps message order deterministic.
  std::map<std::string, MessageBuild> builds;
  std::vector<std::string> mentions;
  std::string base;

  for (const Tweet& tweet : log) {
    SplitRetweetChain(tweet.text, &mentions, &base);
    MessageBuild& build = builds[base];
    const NodeId author = tweet.user;

    if (mentions.empty()) {
      // An original. The earliest original wins the root slot.
      if (!build.root_from_record) {
        build.root = author;
        build.root_from_record = true;
      }
      build.Activate(author);
      build.has_record.insert(author);
      continue;
    }
    // Resolve the chain outermost-first: author ← m0 ← m1 ← … ← m_last
    // (m_last authored the original).
    std::vector<NodeId> chain;
    chain.reserve(mentions.size());
    bool resolved = true;
    for (const std::string& handle : mentions) {
      const NodeId id = registry.IdOf(handle);
      if (id == kInvalidNode) {
        resolved = false;
        break;
      }
      chain.push_back(id);
    }
    if (!resolved) {
      ++result.unresolved_mentions;
      continue;
    }
    // Walk the chain from the root end so ancestors activate before
    // descendants; record attribution child → parent.
    const NodeId chain_root = chain.back();
    if (build.root == kInvalidNode) build.root = chain_root;
    build.Activate(chain_root);
    for (std::size_t i = chain.size() - 1; i > 0; --i) {
      const NodeId child = chain[i - 1];
      const NodeId parent = chain[i];
      build.Activate(child);
      if (child != parent) build.parent_of.try_emplace(child, parent);
    }
    build.Activate(author);
    if (author != chain.front()) {
      build.parent_of.try_emplace(author, chain.front());
    }
    build.has_record.insert(author);
  }

  for (auto& [text, build] : builds) {
    if (build.order.empty()) continue;
    ParsedMessage message;
    message.base_text = text;
    message.root = build.root;
    message.recovered_original =
        build.root != kInvalidNode && !build.root_from_record;
    if (message.recovered_original) ++result.recovered_originals;
    for (NodeId v : build.order) {
      if (v != build.root && !build.has_record.contains(v)) {
        ++result.recovered_intermediates;
      }
    }
    // Root-first activation order.
    message.active_users.push_back(build.root);
    for (NodeId v : build.order) {
      if (v != build.root) message.active_users.push_back(v);
    }
    for (NodeId v : message.active_users) {
      auto it = build.parent_of.find(v);
      if (it != build.parent_of.end() && v != build.root) {
        message.attributions.emplace_back(it->second, v);
      }
    }
    result.messages.push_back(std::move(message));
  }
  return result;
}

AttributedEvidence ParseResult::ToEvidence(const DirectedGraph& graph) const {
  AttributedEvidence evidence;
  for (const ParsedMessage& message : messages) {
    if (message.root == kInvalidNode ||
        message.root >= graph.num_nodes()) {
      continue;
    }
    AttributedObject obj;
    obj.sources = {message.root};
    std::unordered_map<NodeId, NodeId> parent_of;
    for (const auto& [p, c] : message.attributions) parent_of[c] = p;

    std::unordered_set<NodeId> kept{message.root};
    obj.active_nodes.push_back(message.root);
    for (NodeId v : message.active_users) {
      if (v == message.root || v >= graph.num_nodes()) continue;
      auto it = parent_of.find(v);
      if (it == parent_of.end()) continue;  // active but unexplained
      const NodeId p = it->second;
      if (!kept.contains(p)) continue;  // ancestor was dropped
      const EdgeId e = graph.FindEdge(p, v);
      if (e == kInvalidEdge) continue;  // relationship outside the model
      kept.insert(v);
      obj.active_nodes.push_back(v);
      obj.active_edges.push_back(e);
    }
    if (obj.active_nodes.size() >= 1) {
      evidence.objects.push_back(std::move(obj));
    }
  }
  return evidence;
}

std::shared_ptr<const DirectedGraph> ParseResult::InferGraph(
    NodeId num_users) const {
  GraphBuilder builder(num_users);
  for (const ParsedMessage& message : messages) {
    for (const auto& [p, c] : message.attributions) {
      if (p < num_users && c < num_users && p != c) {
        builder.AddEdgeIfAbsent(p, c);
      }
    }
  }
  return std::make_shared<const DirectedGraph>(std::move(builder).Build());
}

}  // namespace infoflow
