/// \file cascade_gen.h
/// \brief Retweet-cascade simulator: generates raw tweet logs with ground
/// truth (the substitution for the Choudhury et al. crawl — see DESIGN.md).
///
/// Messages originate with weighted-random authors and percolate through a
/// ground-truth point ICM over the follow graph (edge (u, v): v sees u's
/// tweets and may retweet with the edge's activation probability —
/// exactly the paper's modeling of retweets, §II). Each activation emits a
/// tweet record using real retweet syntax ("RT @parent: ..."), with the
/// chain of ancestors accumulated in the text like genuine manual retweets.
///
/// To mimic the paper's sparse, incomplete crawl, records can be *dropped*:
/// originals with probability `drop_original_prob` and retweets with
/// `drop_retweet_prob`. The §IV-B preprocessing (retweet_parser.h) must
/// then recover chains and missing originals, and tests can score it
/// against the ground truth kept alongside.

#pragma once

#include <cstdint>
#include <vector>

#include "core/icm.h"
#include "learn/attributed.h"
#include "stats/rng.h"
#include "twitter/tweet.h"
#include "util/status.h"

namespace infoflow {

/// \brief Simulation parameters.
struct CascadeGenOptions {
  /// Number of messages (information objects) to cascade.
  std::size_t num_messages = 1000;
  /// Probability an original tweet is missing from the log.
  double drop_original_prob = 0.15;
  /// Probability any individual retweet record is missing from the log.
  double drop_retweet_prob = 0.0;
  /// Mean seconds between a tweet appearing and a follower retweeting.
  double mean_retweet_delay = 600.0;
  /// Mean seconds between consecutive message origins.
  double mean_message_gap = 30.0;
  /// Proportion of messages carrying a hashtag / a URL in their text.
  double hashtag_prob = 0.3;
  double url_prob = 0.2;
  /// Authors are drawn proportionally to (out-degree + author_smoothing):
  /// well-followed users tweet more, as in the real service.
  double author_smoothing = 1.0;

  Status Validate() const;
};

/// \brief The generator's output: the public log plus private ground truth.
struct GeneratedCascades {
  /// Time-sorted raw log (after dropping).
  TweetLog log;
  /// Per message, the full attributed flow (V⊕, V, E) — what a perfect
  /// parser would recover had nothing been dropped.
  AttributedEvidence ground_truth;
  /// Messages whose original tweet was dropped from the log.
  std::uint64_t dropped_originals = 0;
  /// Retweet records dropped from the log.
  std::uint64_t dropped_retweets = 0;
};

/// \brief Runs the simulator over `model`'s follow graph. `registry` must
/// cover the graph's nodes.
Result<GeneratedCascades> GenerateCascades(const PointIcm& model,
                                           const UserRegistry& registry,
                                           const CascadeGenOptions& options,
                                           Rng& rng);

}  // namespace infoflow
