#include "twitter/tag_gen.h"

#include <queue>

#include "util/check.h"

namespace infoflow {

PointIcm TagNetwork::GroundTruth(double external_prob) const {
  IF_CHECK(external_prob >= 0.0 && external_prob <= 1.0);
  std::vector<double> probs = in_network_probs;
  for (EdgeId e : graph->OutEdges(omnipotent)) probs[e] = external_prob;
  return PointIcm(graph, std::move(probs));
}

TagNetwork AugmentWithOmnipotent(const PointIcm& base_model) {
  const DirectedGraph& base = base_model.graph();
  const NodeId omnipotent = base.num_nodes();
  GraphBuilder builder(base.num_nodes() + 1);
  for (const Edge& e : base.edges()) {
    builder.AddEdge(e.src, e.dst).CheckOK();
  }
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    builder.AddEdge(omnipotent, v).CheckOK();
  }
  TagNetwork network;
  network.graph =
      std::make_shared<const DirectedGraph>(std::move(builder).Build());
  network.omnipotent = omnipotent;
  // Edge-id preservation: base edges all have src < omnipotent, so the
  // (src, dst)-sorted augmented ids coincide with the base ids for the
  // first m slots.
  network.in_network_probs.assign(network.graph->num_edges(), 0.0);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    IF_CHECK(network.graph->edge(e) == base.edge(e))
        << "edge-id preservation violated at edge " << e;
    network.in_network_probs[e] = base_model.prob(e);
  }
  return network;
}

Status TagGenOptions::Validate() const {
  if (num_objects == 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  if (mean_delay <= 0.0 || horizon <= 0.0) {
    return Status::InvalidArgument("delays must be positive");
  }
  for (double p : {url_external_prob, hashtag_event_prob,
                   hashtag_event_external, hashtag_quiet_external}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probability option ", p,
                                     " outside [0,1]");
    }
  }
  return Status::OK();
}

namespace {
struct Arrival {
  double time;
  NodeId node;
  bool operator>(const Arrival& other) const { return time > other.time; }
};
}  // namespace

Result<UnattributedEvidence> GenerateTagTraces(const TagNetwork& network,
                                               TagKind kind,
                                               const TagGenOptions& options,
                                               Rng& rng) {
  IF_RETURN_NOT_OK(options.Validate());
  const DirectedGraph& graph = *network.graph;
  UnattributedEvidence evidence;
  evidence.traces.reserve(options.num_objects);

  std::vector<std::uint8_t> active(graph.num_nodes(), 0);
  for (std::size_t obj = 0; obj < options.num_objects; ++obj) {
    // Per-object external rate: URLs are constant; hashtags mix quiet tags
    // with offline-event tags (the regime the per-edge ICM cannot model).
    double external_prob = options.url_external_prob;
    if (kind == TagKind::kHashtag) {
      external_prob = rng.Bernoulli(options.hashtag_event_prob)
                          ? options.hashtag_event_external
                          : options.hashtag_quiet_external;
    }

    ObjectTrace trace;
    std::fill(active.begin(), active.end(), 0);
    std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> queue;

    // The omnipotent node is active from the start.
    active[network.omnipotent] = 1;
    trace.activations.push_back(Activation{network.omnipotent, 0.0});
    for (EdgeId e : graph.OutEdges(network.omnipotent)) {
      if (rng.Bernoulli(external_prob)) {
        queue.push(Arrival{rng.Uniform(0.0, options.horizon),
                           graph.edge(e).dst});
      }
    }
    while (!queue.empty()) {
      const Arrival arrival = queue.top();
      queue.pop();
      if (active[arrival.node]) continue;
      active[arrival.node] = 1;
      trace.activations.push_back(Activation{arrival.node, arrival.time});
      for (EdgeId e : graph.OutEdges(arrival.node)) {
        const NodeId next = graph.edge(e).dst;
        if (active[next]) continue;
        if (!rng.Bernoulli(network.in_network_probs[e])) continue;
        queue.push(Arrival{
            arrival.time + rng.Exponential(1.0 / options.mean_delay), next});
      }
    }
    evidence.traces.push_back(std::move(trace));
  }
  return evidence;
}

}  // namespace infoflow
