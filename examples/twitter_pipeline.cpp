/// \file twitter_pipeline.cpp
/// \brief Example: the paper's full Twitter workflow end-to-end (§IV–V).
///
/// 1. Simulate a Twitter community and its raw tweet logs (originals
///    partially missing, like the real crawl).
/// 2. §IV-B preprocessing: parse retweet chains, recover missing
///    originals, infer the topology from '@' references.
/// 3. Train a betaICM from the attributed evidence and evaluate held-out
///    calibration with a mini bucket experiment.
/// 4. Generate URL adoption traces (unattributed, with the omnipotent
///    external-world user) and train all four unattributed estimators,
///    reporting RMSE against the generator's ground truth.
///
///   $ build/examples/twitter_pipeline

#include <cstdio>
#include <memory>

#include "core/mh_sampler.h"
#include "eval/bucket.h"
#include "eval/metrics.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "learn/attributed.h"
#include "learn/model_trainer.h"
#include "stats/descriptive.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"
#include "twitter/tag_gen.h"

using namespace infoflow;

int main() {
  Rng rng(314159);
  const NodeId kUsers = 200;
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 3, 0.25, rng));
  const UserRegistry registry = UserRegistry::Sequential(kUsers);
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.35);
  const PointIcm world(graph, probs);
  std::printf("community: %s\n", graph->ToString().c_str());

  // ---- 1-2. raw logs and preprocessing ---------------------------------
  CascadeGenOptions gen;
  gen.num_messages = 3000;
  gen.drop_original_prob = 0.2;
  auto logs = GenerateCascades(world, registry, gen, rng);
  logs.status().CheckOK();
  const ParseResult parsed = ParseRetweetLog(logs->log, registry);
  std::printf(
      "raw log: %zu tweets (%llu originals dropped by the 'crawl')\n",
      logs->log.size(),
      static_cast<unsigned long long>(logs->dropped_originals));
  std::printf(
      "parsed: %zu messages; %llu originals recovered, %llu chain "
      "ancestors recovered\n",
      parsed.messages.size(),
      static_cast<unsigned long long>(parsed.recovered_originals),
      static_cast<unsigned long long>(parsed.recovered_intermediates));

  // Topology inferred from the '@' references (§IV-C) — a subset of the
  // true follow graph, covering the edges that actually carried traffic.
  auto inferred = parsed.InferGraph(kUsers);
  std::printf("inferred topology: %s (true graph has %u edges)\n",
              inferred->ToString().c_str(), graph->num_edges());

  // ---- 3. attributed training + held-out calibration -------------------
  const AttributedEvidence evidence = parsed.ToEvidence(*graph);
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();

  const auto foci = SelectInterestingUsers(kUsers, evidence, 3);
  BucketExperiment bucket;
  Rng test_rng(99);
  const PointIcm expected = model->ExpectedIcm();
  for (NodeId focus : foci) {
    const Subgraph ego = EgoSubgraph(*graph, focus, 2);
    auto ego_graph = std::make_shared<const DirectedGraph>(ego.graph);
    std::vector<double> learned(ego.graph.num_edges()),
        true_probs(ego.graph.num_edges());
    for (EdgeId e = 0; e < ego.graph.num_edges(); ++e) {
      learned[e] = expected.prob(ego.edge_to_parent[e]);
      true_probs[e] = world.prob(ego.edge_to_parent[e]);
    }
    const PointIcm ego_model(ego_graph, learned);
    const PointIcm ego_world(ego_graph, true_probs);
    const NodeId local_focus = ego.LocalNode(focus);
    MhOptions mh;
    mh.burn_in = 2500;
    mh.thinning = 10;
    auto sampler = MhSampler::Create(ego_model, {}, mh, test_rng.Split());
    sampler.status().CheckOK();
    for (int t = 0; t < 40; ++t) {
      auto sink = static_cast<NodeId>(
          test_rng.NextBounded(ego.graph.num_nodes()));
      if (sink == local_focus) continue;
      const ActiveState held_out =
          ego_world.SampleCascade({local_focus}, test_rng);
      bucket.Add(sampler->EstimateFlowProbability(local_focus, sink, 600),
                 held_out.IsNodeActive(sink));
    }
  }
  const BucketReport report = bucket.Analyze(10);
  const AccuracyReport acc = ComputeAccuracy(bucket.pairs());
  std::printf(
      "\nheld-out calibration (radius-2 egos of %zu focus users): "
      "coverage %.0f%%, NL %.3f, Brier %.3f over %llu trials\n",
      foci.size(), 100.0 * report.coverage, acc.normalized_likelihood,
      acc.brier, static_cast<unsigned long long>(report.total));

  // ---- 4. unattributed URL traces: four estimators ---------------------
  const TagNetwork network = AugmentWithOmnipotent(world);
  TagGenOptions tag_gen;
  tag_gen.num_objects = 500;
  Rng tag_rng = rng.Split();
  auto traces = GenerateTagTraces(network, TagKind::kUrl, tag_gen, tag_rng);
  traces.status().CheckOK();

  // Exposure per in-network edge: in how many traces was the parent active
  // before the child (or before the end of the trace)? Edges the data
  // never exercises stay at each method's default (our Beta(1,1) prior
  // mean vs Goyal's 0), which says nothing about learning quality, so the
  // RMSE comparison uses well-exercised edges only — the Fig. 7 regime.
  std::vector<std::uint32_t> exposure(graph->num_edges(), 0);
  for (const ObjectTrace& trace : traces->traces) {
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      const Edge& edge = graph->edge(e);
      if (trace.TimeOf(edge.src) < trace.TimeOf(edge.dst)) ++exposure[e];
    }
  }
  std::printf("\nunattributed URL traces: %zu objects; per-method RMSE of "
              "learned edge probabilities vs ground truth (edges exercised "
              ">= 20 times):\n",
              traces->traces.size());
  const PointIcm tag_truth = network.GroundTruth(tag_gen.url_external_prob);
  for (auto method :
       {UnattributedMethod::kJointBayes, UnattributedMethod::kGoyal,
        UnattributedMethod::kSaitoEm, UnattributedMethod::kFiltered}) {
    UnattributedTrainOptions opt;
    opt.method = method;
    opt.joint_bayes.num_samples = 300;
    opt.joint_bayes.burn_in = 200;
    opt.no_evidence_mean = 0.0;
    Rng fit_rng(7);
    auto fitted = TrainUnattributedModel(network.graph, *traces, opt, fit_rng);
    fitted.status().CheckOK();
    std::vector<double> est, truth;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (exposure[e] < 20) continue;
      est.push_back(fitted->mean[e]);
      truth.push_back(tag_truth.prob(e));
    }
    std::printf("  %-12s RMSE = %.4f  (over %zu edges)\n",
                UnattributedMethodName(method), Rmse(est, truth),
                est.size());
  }
  std::printf("\n(the joint-Bayes row should be the smallest — the Fig. 7/8 "
              "ordering)\n");
  return 0;
}
