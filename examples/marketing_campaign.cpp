/// \file marketing_campaign.cpp
/// \brief Example: maximizing marketing impact on social media (§I's first
/// motivating application).
///
/// A brand wants to seed a campaign message with one of its brand
/// ambassadors. We (1) learn a betaICM of the network from historical
/// retweet logs — raw tweets through the full §IV-B preprocessing — then
/// (2) rank candidate seed users by expected impact (spread size) with
/// parameter uncertainty, and (3) report source-to-community flow
/// probabilities into a target audience segment for the best seed.
///
///   $ build/examples/marketing_campaign

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/impact.h"
#include "core/influence_max.h"
#include "core/mh_sampler.h"
#include "graph/generators.h"
#include "learn/attributed.h"
#include "stats/descriptive.h"
#include "twitter/cascade_gen.h"
#include "twitter/interesting_users.h"
#include "twitter/retweet_parser.h"

using namespace infoflow;

int main() {
  // A mid-sized community with realistic heavy-tailed follower counts.
  Rng rng(2012);
  const NodeId kUsers = 250;
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kUsers, 4, 0.25, rng));
  const UserRegistry registry = UserRegistry::Sequential(kUsers);
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.35);
  const PointIcm world(graph, probs);  // the real behaviour, unknown to us

  // --- historical logs -> preprocessing -> trained model ----------------
  CascadeGenOptions history;
  history.num_messages = 4000;
  history.drop_original_prob = 0.15;
  auto logs = GenerateCascades(world, registry, history, rng);
  logs.status().CheckOK();
  const ParseResult parsed = ParseRetweetLog(logs->log, registry);
  const AttributedEvidence evidence = parsed.ToEvidence(*graph);
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();
  std::printf("trained on %zu raw tweets -> %zu reconstructed cascades "
              "(%llu originals recovered)\n",
              logs->log.size(), parsed.messages.size(),
              static_cast<unsigned long long>(parsed.recovered_originals));

  // --- candidate ambassadors: the platform's most interesting users -----
  const auto candidates = SelectInterestingUsers(kUsers, evidence, 8);
  std::printf("\ncandidate seeds: ");
  for (NodeId c : candidates) std::printf("user%u ", c);
  std::printf("\n\n%-8s %14s %14s %14s\n", "seed", "E[impact]",
              "p10(impact)", "p90(impact)");

  NodeId best_seed = kInvalidNode;
  double best_mean = -1.0;
  Rng sim_rng(7);
  for (NodeId seed : candidates) {
    // Impact with parameter uncertainty: each cascade runs on a fresh ICM
    // drawn from the betaICM (§III-E), so the quantiles reflect both
    // cascade randomness and how little we know about weak edges.
    const ImpactDistribution dist = SimulateImpact(*model, seed, 4000, sim_rng);
    std::vector<double> samples;
    for (std::size_t k = 0; k < dist.counts.size(); ++k) {
      samples.insert(samples.end(), dist.counts[k],
                     static_cast<double>(k));
    }
    const double p10 = Quantile(samples, 0.10);
    const double p90 = Quantile(samples, 0.90);
    std::printf("user%-4u %14.2f %14.0f %14.0f\n", seed, dist.Mean(), p10,
                p90);
    if (dist.Mean() > best_mean) {
      best_mean = dist.Mean();
      best_seed = seed;
    }
  }
  std::printf("\nrecommended seed: user%u (expected impact %.1f users)\n",
              best_seed, best_mean);

  // --- multi-seed campaign: CELF influence maximization ------------------
  // A budget of three ambassadors: greedy-submodular selection avoids
  // picking three seeds whose audiences overlap.
  InfluenceMaxOptions im;
  im.num_seeds = 3;
  im.simulations = 600;
  im.candidates = candidates;
  Rng im_rng(13);
  auto seeds = MaximizeInfluence(model->ExpectedIcm(), im, im_rng);
  seeds.status().CheckOK();
  std::printf("\nthree-ambassador campaign (CELF, %zu spread evaluations):\n",
              seeds->evaluations);
  for (std::size_t k = 0; k < seeds->seeds.size(); ++k) {
    std::printf("  +user%-4u -> expected combined spread %.1f users\n",
                seeds->seeds[k], seeds->expected_spread[k]);
  }

  // --- audience reach for the chosen seed -------------------------------
  // Source-to-community flow: probability the campaign reaches each member
  // of a target segment (here: ten specific accounts).
  std::vector<NodeId> segment;
  for (NodeId v = 0; segment.size() < 10 && v < kUsers; v += 23) {
    if (v != best_seed) segment.push_back(v);
  }
  MhOptions mh;
  mh.burn_in = 4000;
  mh.thinning = 15;
  auto sampler =
      MhSampler::Create(model->ExpectedIcm(), {}, mh, Rng(11));
  sampler.status().CheckOK();
  const auto reach = sampler->EstimateCommunityFlow(best_seed, segment, 2000);
  std::printf("\ntarget segment reach from user%u:\n", best_seed);
  for (std::size_t j = 0; j < segment.size(); ++j) {
    std::printf("  user%-4u  Pr[reach] = %.3f\n", segment[j], reach[j]);
  }
  // Joint coverage: chance the campaign reaches at least the first three
  // segment members simultaneously.
  const FlowConditions all_three{{best_seed, segment[0], true},
                                 {best_seed, segment[1], true},
                                 {best_seed, segment[2], true}};
  std::printf("joint Pr[reach first three together] = %.3f\n",
              sampler->EstimateJointFlowProbability(all_three, 2000));
  return 0;
}
