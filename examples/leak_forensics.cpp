/// \file leak_forensics.cpp
/// \brief Example: risk-aware analysis of an undesired disclosure (§I's
/// "managing undesired disclosure of sensitive information", §VI's
/// "risk-aware calculations of information leakage").
///
/// A sensitive document escaped from an employee's workstation. We know
/// two places it has surfaced and one place it provably has not. Using a
/// betaICM learned from past sharing behaviour we answer:
///   1. conditioned on the observed evidence, who else likely holds the
///      document now (conditional source-to-community flow, Eq. 6/8);
///   2. how *sure* are we — full distributions over those probabilities,
///      via nested MH over the betaICM (§III-E);
///   3. which single edge, if cut, most reduces the chance the document
///      reaches the boardroom-leak target (a counterfactual sweep).
///
///   $ build/examples/leak_forensics

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/mh_sampler.h"
#include "core/nested_mh.h"
#include "graph/generators.h"
#include "learn/attributed.h"
#include "stats/descriptive.h"

using namespace infoflow;

namespace {

/// Trains a sharing model from simulated historical transfers.
BetaIcm LearnSharingModel(const std::shared_ptr<const DirectedGraph>& graph,
                          const PointIcm& behaviour, Rng& rng) {
  AttributedEvidence evidence;
  for (int i = 0; i < 2500; ++i) {
    const auto origin =
        static_cast<NodeId>(rng.NextBounded(graph->num_nodes()));
    const ActiveState s = behaviour.SampleCascade({origin}, rng);
    AttributedObject obj;
    obj.sources = s.sources;
    obj.active_nodes = s.active_nodes;
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (s.edge_active[e]) obj.active_edges.push_back(e);
    }
    evidence.objects.push_back(std::move(obj));
  }
  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();
  return std::move(model).ValueOrDie();
}

}  // namespace

int main() {
  // An organization of 40 staff with asymmetric sharing relationships.
  Rng rng(1984);
  const NodeId kStaff = 40;
  auto graph = std::make_shared<const DirectedGraph>(
      UniformRandomGraph(kStaff, 160, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.02, 0.4);
  const PointIcm behaviour(graph, probs);
  const BetaIcm model = LearnSharingModel(graph, behaviour, rng);

  const NodeId kSource = 3;       // the compromised workstation
  const NodeId kSeenAt1 = 17;     // document spotted here
  const NodeId kSeenAt2 = 29;     // ... and here
  const NodeId kCleared = 8;      // forensically clean machine
  const NodeId kBoardTarget = 35; // the feared final destination

  const FlowConditions observed{{kSource, kSeenAt1, true},
                                {kSource, kSeenAt2, true},
                                {kSource, kCleared, false}};
  std::printf("incident: document left staff%u; seen at staff%u and "
              "staff%u; staff%u is clean\n\n",
              kSource, kSeenAt1, kSeenAt2, kCleared);

  // --- 1. posterior exposure, everyone ----------------------------------
  const PointIcm expected = model.ExpectedIcm();
  MhOptions mh;
  mh.burn_in = 6000;
  mh.thinning = 20;
  auto prior_chain = MhSampler::Create(expected, {}, mh, Rng(5));
  auto posterior_chain = MhSampler::Create(expected, observed, mh, Rng(6));
  prior_chain.status().CheckOK();
  posterior_chain.status().CheckOK();

  std::vector<NodeId> everyone;
  for (NodeId v = 0; v < kStaff; ++v) {
    if (v != kSource) everyone.push_back(v);
  }
  const auto prior = prior_chain->EstimateCommunityFlow(kSource, everyone, 3000);
  const auto posterior =
      posterior_chain->EstimateCommunityFlow(kSource, everyone, 3000);

  struct Suspect {
    NodeId who;
    double before, after;
  };
  std::vector<Suspect> suspects;
  for (std::size_t j = 0; j < everyone.size(); ++j) {
    suspects.push_back({everyone[j], prior[j], posterior[j]});
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const Suspect& a, const Suspect& b) {
              return a.after > b.after;
            });
  std::printf("%-10s %12s %12s %8s\n", "staff", "Pr(before)", "Pr(after)",
              "shift");
  for (std::size_t j = 0; j < 10; ++j) {
    const Suspect& s = suspects[j];
    std::printf("staff%-5u %12.3f %12.3f %+8.3f\n", s.who, s.before,
                s.after, s.after - s.before);
  }

  // --- 2. uncertainty on the headline number ----------------------------
  NestedMhOptions nested;
  nested.num_models = 80;
  nested.samples_per_model = 600;
  nested.mh = mh;
  Rng nested_rng(9);
  auto board_dist = NestedMhFlowDistribution(model, kSource, kBoardTarget,
                                             observed, nested, nested_rng);
  board_dist.status().CheckOK();
  std::vector<double> board = board_dist->probabilities;
  std::printf(
      "\nPr[document reaches staff%u | evidence]: mean %.3f, 80%% credible "
      "[%.3f, %.3f]\n",
      kBoardTarget, board_dist->Mean(), Quantile(board, 0.10),
      Quantile(board, 0.90));

  // --- 3. which link to cut ---------------------------------------------
  // Counterfactual: zero one edge at a time, re-estimate the conditional
  // flow to the board target, and report the most effective cut among the
  // ten most-used edges into the target's neighborhood.
  std::printf("\ncounterfactual containment (top cuts):\n");
  struct Cut {
    EdgeId edge;
    double residual_risk;
  };
  std::vector<Cut> cuts;
  const double baseline =
      posterior_chain->EstimateFlowProbability(kSource, kBoardTarget, 3000);
  for (EdgeId e : graph->InEdges(kBoardTarget)) {
    std::vector<double> cut_probs = expected.probs();
    cut_probs[e] = 0.0;
    const PointIcm cut_model(graph, cut_probs);
    auto chain = MhSampler::Create(cut_model, observed, mh, Rng(20 + e));
    if (!chain.ok()) continue;
    cuts.push_back(
        {e, chain->EstimateFlowProbability(kSource, kBoardTarget, 2000)});
  }
  std::sort(cuts.begin(), cuts.end(), [](const Cut& a, const Cut& b) {
    return a.residual_risk < b.residual_risk;
  });
  std::printf("baseline conditional risk: %.3f\n", baseline);
  for (std::size_t j = 0; j < std::min<std::size_t>(5, cuts.size()); ++j) {
    const Edge& edge = graph->edge(cuts[j].edge);
    std::printf("cut staff%u->staff%u: residual risk %.3f\n", edge.src,
                edge.dst, cuts[j].residual_risk);
  }
  return 0;
}
