/// \file quickstart.cpp
/// \brief Five-minute tour of the infoflow library.
///
/// Builds a small information network, trains a betaICM from attributed
/// evidence, asks flow questions with exact evaluation and with the
/// Metropolis–Hastings sampler, conditions on observed flows, and builds a
/// Table-I-style evidence summary for the unattributed learner.
///
///   $ build/examples/quickstart

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/beta_icm.h"
#include "core/exact_flow.h"
#include "core/mh_sampler.h"
#include "core/multi_chain.h"
#include "core/nested_mh.h"
#include "learn/attributed.h"
#include "learn/joint_bayes.h"
#include "learn/summary.h"

using namespace infoflow;

int main() {
  // ---------------------------------------------------------------- graph
  // The paper's worked example (§II): v0 -> v1, v0 -> v2, v1 -> v2, plus
  // the back edge v2 -> v1 that makes it cyclic.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1).CheckOK();
  builder.AddEdge(0, 2).CheckOK();
  builder.AddEdge(1, 2).CheckOK();
  builder.AddEdge(2, 1).CheckOK();
  auto graph = std::make_shared<const DirectedGraph>(std::move(builder).Build());
  std::printf("graph: %s\n", graph->ToString().c_str());

  // ------------------------------------------------- attributed training
  // Three observed cascades (objects): who started them, who got them, and
  // which edge carried each copy.
  AttributedEvidence evidence;
  const EdgeId e01 = graph->FindEdge(0, 1);
  const EdgeId e02 = graph->FindEdge(0, 2);
  const EdgeId e12 = graph->FindEdge(1, 2);
  evidence.objects.push_back({{0}, {0, 1, 2}, {e01, e12}});
  evidence.objects.push_back({{0}, {0, 1}, {e01}});
  evidence.objects.push_back({{0}, {0, 2}, {e02}});

  auto model = TrainBetaIcmFromAttributed(graph, evidence);
  model.status().CheckOK();
  for (EdgeId e = 0; e < graph->num_edges(); ++e) {
    const Edge& edge = graph->edge(e);
    std::printf("edge %u->%u: %s  (mean %.3f)\n", edge.src, edge.dst,
                model->EdgeBeta(e).ToString().c_str(),
                model->EdgeBeta(e).Mean());
  }

  // ------------------------------------------------------ exact questions
  const PointIcm expected = model->ExpectedIcm();
  std::printf("\nexact Pr[0 ~> 2]              = %.4f\n",
              ExactFlowByEnumeration(expected, 0, 2));
  std::printf("exact Pr[0 ~> 2 | 0 ~> 1]     = %.4f\n",
              ExactConditionalFlowByEnumeration(expected, 0, 2, {{0, 1, true}})
                  .ValueOrDie());
  std::printf("exact Pr[0 ~> 1 and 0 ~> 2]   = %.4f\n",
              ExactJointFlowByEnumeration(expected,
                                          {{0, 1, true}, {0, 2, true}}));

  // -------------------------------------------- Metropolis–Hastings answers
  MhOptions mh;
  mh.burn_in = 2000;
  mh.thinning = 4;
  auto sampler = MhSampler::Create(expected, {}, mh, Rng(1));
  sampler.status().CheckOK();
  std::printf("MH    Pr[0 ~> 2]              = %.4f  (40k samples)\n",
              sampler->EstimateFlowProbability(0, 2, 40000));
  auto conditioned =
      MhSampler::Create(expected, {{0, 1, true}}, mh, Rng(2));
  conditioned.status().CheckOK();
  std::printf("MH    Pr[0 ~> 2 | 0 ~> 1]     = %.4f\n",
              conditioned->EstimateFlowProbability(0, 2, 40000));

  // --------------------------------- parallel chains + convergence checks
  // The same estimate from 4 independent chains run on a thread pool. The
  // diagnostics say whether the chains agree (R-hat ~ 1) and how much
  // Monte-Carlo error is left (MCSE); results are bit-identical for a
  // fixed seed no matter how many threads execute the chains.
  MultiChainOptions mc;
  mc.num_chains = 4;
  mc.mh = mh;
  auto engine = MultiChainSampler::Create(expected, {}, mc, /*seed=*/5);
  engine.status().CheckOK();
  const MultiChainEstimate est = engine->EstimateFlowProbability(0, 2, 40000);
  std::printf("multi Pr[0 ~> 2]              = %.4f  [%s]\n", est.value,
              est.diagnostics.ToString().c_str());
  std::printf("      converged: %s\n",
              est.diagnostics.Converged() ? "yes" : "no");

  // ------------------------------------------------ uncertainty (nested MH)
  NestedMhOptions nested;
  nested.num_models = 100;
  nested.samples_per_model = 400;
  nested.mh = mh;
  Rng nested_rng(3);
  auto dist = NestedMhFlowDistribution(*model, 0, 2, {}, nested, nested_rng);
  dist.status().CheckOK();
  std::printf("betaICM uncertainty over Pr[0 ~> 2]: mean %.4f sd %.4f "
              "(fitted %s)\n",
              dist->Mean(), std::sqrt(dist->Variance()),
              dist->FittedBeta().ToString().c_str());

  // -------------------------------------- unattributed evidence summaries
  // Table I in miniature: traces with activation times only.
  UnattributedEvidence traces;
  traces.traces.push_back({{{0, 1.0}, {1, 2.0}, {2, 3.0}}});
  traces.traces.push_back({{{0, 1.0}, {2, 2.0}}});
  traces.traces.push_back({{{0, 1.0}, {1, 2.0}}});
  const SinkSummary summary = BuildSinkSummary(*graph, 2, traces);
  std::printf("\n%s", summary.ToString().c_str());

  JointBayesOptions jb;
  jb.num_samples = 2000;
  jb.burn_in = 500;
  Rng jb_rng(4);
  auto posterior = FitJointBayes(summary, jb, jb_rng);
  posterior.status().CheckOK();
  for (std::size_t j = 0; j < posterior->parents.size(); ++j) {
    std::printf("posterior p(%u->2): mean %.3f sd %.3f\n",
                posterior->parents[j], posterior->mean[j],
                posterior->sd[j]);
  }
  return 0;
}
