/// \file outbreak_response.cpp
/// \brief Example: timed flow for public-health announcements (§I's
/// motivation; §VI's delay extension).
///
/// A health agency must warn a set of communities about contaminated
/// supplies. Messages relay through a trust network where each hop takes
/// time. Using a DelayedIcm (per-edge activation probability + forwarding
/// delay) we answer the questions a deadline imposes:
///   1. which seed reaches the most at-risk communities *within 24h* —
///      not just eventually;
///   2. the arrival-time distribution to the most remote community;
///   3. how much a faster official channel (lower delays on the agency's
///      own edges) buys, versus raising forwarding probability.
///
///   $ build/examples/outbreak_response

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/delay.h"
#include "core/influence_max.h"
#include "graph/generators.h"
#include "stats/descriptive.h"

using namespace infoflow;

int main() {
  // Trust network: 120 community hubs, heavy-tailed connectivity.
  Rng rng(24601);
  const NodeId kHubs = 120;
  auto graph = std::make_shared<const DirectedGraph>(
      PreferentialAttachmentGraph(kHubs, 3, 0.4, rng));
  std::vector<double> probs(graph->num_edges());
  for (double& p : probs) p = rng.Uniform(0.2, 0.8);
  const PointIcm model(graph, probs);

  // Forwarding delays: most relays pass a warning on within hours, but the
  // tail is long (someone reads it the next morning).
  std::vector<EdgeDelay> delays(graph->num_edges());
  for (auto& d : delays) {
    d = EdgeDelay::ExponentialMean(rng.Uniform(2.0, 10.0));  // hours
  }
  auto timed = DelayedIcm::Create(model, delays);
  timed.status().CheckOK();

  // At-risk communities to warn.
  const std::vector<NodeId> at_risk{17, 42, 63, 88, 101, 115};
  const double kDeadline = 24.0;  // hours

  // --- 1. seed choice under the deadline ---------------------------------
  std::printf("expected at-risk communities warned within %.0fh, by seed:\n",
              kDeadline);
  std::printf("%-8s %18s %18s\n", "seed", "E[warned @24h]",
              "E[warned ever]");
  NodeId best_seed = kInvalidNode;
  double best_within = -1.0;
  Rng sim_rng(7);
  for (NodeId seed : {0u, 1u, 2u, 5u, 9u}) {  // candidate agency liaisons
    double within = 0.0, ever = 0.0;
    const int kTrials = 3000;
    for (int t = 0; t < kTrials; ++t) {
      const auto arrival = timed->SampleArrivalTimes({seed}, sim_rng);
      for (NodeId c : at_risk) {
        if (arrival[c] <= kDeadline) within += 1.0;
        if (arrival[c] < 1e18) ever += 1.0;
      }
    }
    within /= kTrials;
    ever /= kTrials;
    std::printf("hub%-5u %18.2f %18.2f\n", seed, within, ever);
    if (within > best_within) {
      best_within = within;
      best_seed = seed;
    }
  }
  std::printf("-> seed hub%u maximizes coverage under the deadline\n\n",
              best_seed);

  // --- 2. arrival profile to the most remote community -------------------
  NodeId remote = at_risk[0];
  double worst = -1.0;
  for (NodeId c : at_risk) {
    const ArrivalEstimate est = EstimateArrival(*timed, best_seed, c, 4000,
                                                sim_rng);
    if (est.FlowProbability() > 0 && est.MeanArrivalTime() > worst) {
      worst = est.MeanArrivalTime();
      remote = c;
    }
  }
  const ArrivalEstimate est =
      EstimateArrival(*timed, best_seed, remote, 8000, sim_rng);
  std::vector<double> times = est.arrival_times;
  std::printf("most remote at-risk community: hub%u\n", remote);
  std::printf("  Pr[warned at all]      = %.3f\n", est.FlowProbability());
  std::printf("  Pr[warned within 12h]  = %.3f\n",
              est.FlowProbabilityWithin(12.0));
  std::printf("  Pr[warned within 24h]  = %.3f\n",
              est.FlowProbabilityWithin(24.0));
  if (!times.empty()) {
    std::printf("  arrival quantiles (h): p10=%.1f median=%.1f p90=%.1f\n",
                Quantile(times, 0.1), Quantile(times, 0.5),
                Quantile(times, 0.9));
  }

  // --- 3. intervention comparison ----------------------------------------
  // (a) official fast channel: agency's own out-edges relay in 1h flat;
  // (b) persuasion campaign: +0.15 forwarding probability network-wide.
  std::vector<EdgeDelay> fast_delays = delays;
  for (EdgeId e : graph->OutEdges(best_seed)) {
    fast_delays[e] = EdgeDelay::Constant(1.0);
  }
  auto fast = DelayedIcm::Create(model, fast_delays);
  fast.status().CheckOK();

  std::vector<double> boosted = probs;
  for (double& p : boosted) p = std::min(1.0, p + 0.15);
  auto persuaded = DelayedIcm::Create(PointIcm(graph, boosted), delays);
  persuaded.status().CheckOK();

  auto coverage_at = [&](const DelayedIcm& m) {
    double within = 0.0;
    const int kTrials = 4000;
    for (int t = 0; t < kTrials; ++t) {
      const auto arrival = m.SampleArrivalTimes({best_seed}, sim_rng);
      for (NodeId c : at_risk) {
        if (arrival[c] <= kDeadline) within += 1.0;
      }
    }
    return within / kTrials;
  };
  std::printf("\nintervention comparison (E[warned @24h] from hub%u):\n",
              best_seed);
  std::printf("  baseline              %.2f\n", coverage_at(*timed));
  std::printf("  fast official channel %.2f\n", coverage_at(*fast));
  std::printf("  +0.15 forward prob    %.2f\n", coverage_at(*persuaded));
  return 0;
}
